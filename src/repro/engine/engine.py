"""The concurrent batched spatial query engine.

:class:`SpatialQueryEngine` composes the serving stack:

* an :class:`~repro.engine.registry.IndexRegistry` building PM1 /
  bucket-PMR / R-tree indexes on demand, keyed by dataset fingerprint,
  with LRU eviction and invalidation hooks for dynamic updates --
  optionally backed by a persistent :class:`~repro.store.IndexStore`
  (``cache_dir=...``) that absorbs evictions and serves warm starts;
* a :class:`~repro.engine.coalescer.Coalescer` that batches individual
  window / point / nearest probes per (index, kind) within a count or
  deadline window;
* a :class:`~repro.engine.executor.BoundedExecutor` dispatching each
  batch as **one** vectorized ``structures.batch`` frontier pass over
  the shared read-only index, with backpressure when saturated;
* an :class:`~repro.engine.stats.EngineStats` layer aggregating batch
  sizes, queue depth, cache hit rate, latency percentiles, and the
  scan-model step accounting per batch;
* a :mod:`~repro.resilience` layer: per-fingerprint circuit breakers
  (fail fast with :class:`CircuitOpenError`, or degrade to a
  brute-force scan with ``brute_fallback=True``), retry with backoff
  on transient executor rejections and store loads, deadline
  propagation into sharded fan-outs (an expired deadline yields a
  :class:`~repro.resilience.PartialResult`, not a timeout), and an
  optional :class:`~repro.resilience.FaultInjector` driven by
  ``fault_plan`` for chaos testing.  :meth:`SpatialQueryEngine.health`
  snapshots it all.

Results are bit-identical to looping the scalar queries (a test
invariant): batching changes the schedule, never the answer.

Example::

    from repro.engine import SpatialQueryEngine

    with SpatialQueryEngine(workers=4, max_batch=256) as eng:
        fp = eng.register(lines, domain=4096)
        hits = eng.window(fp, [100, 100, 400, 300])
        line, dist = eng.nearest(fp, (250.0, 250.0), structure="rtree")
"""

from __future__ import annotations

import os
import random
import threading
import time
from concurrent.futures import (Future, InvalidStateError,
                                TimeoutError as FutureTimeoutError)
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..baselines.brute import brute_point_query, brute_window_query
from ..durability import (FSYNC_POLICIES, JournalError, MutationJournal,
                          RecoveryReport, journal_roots, replay_journal)
from ..resilience import (OPEN, BreakerBoard, CircuitOpenError, FaultInjector,
                          FaultPlan, InjectedFault, PartialResult, RetryPolicy)
from ..structures.join import brute_join, quadtree_join, rtree_join
from ..structures.nearest import brute_nearest
from ..structures.sharded import ORDERINGS, ShardedIndex, sharded_join
from ..shm import DATASET_PREFIX, INDEX_PREFIX, ShmArena
from ..store import store_key_id
from ..structures.io import structure_payload
from .adaptive import AdaptiveController
from .coalescer import Coalescer, Probe
from .executor import BoundedExecutor, ProcessBackend, RejectedError
from .registry import IndexKey, IndexRegistry
from .stats import EngineStats
from .worker import FAMILY as _FAMILY
from .worker import IndexRef, JobSpec, WorkerResult, batch_kernel

__all__ = ["EngineConfig", "MutationResult", "SpatialQueryEngine"]

#: executor backend names accepted by :class:`EngineConfig`
EXECUTORS = ("thread", "process")

KINDS = ("window", "point", "nearest")


def _resolve(fut: Future, value) -> None:
    """Set a result, tolerating a future cancelled by a timed-out waiter."""
    try:
        fut.set_result(value)
    except InvalidStateError:
        pass


def _reject(fut: Future, exc: BaseException) -> None:
    try:
        fut.set_exception(exc)
    except InvalidStateError:
        pass


@dataclass(frozen=True)
class MutationResult:
    """Outcome of one committed mutation batch (a future's value).

    ``repair`` carries the shard-repair stats of the warm build when
    the new version was repaired incrementally from its parent
    (``None``: the index was built canonically).
    """

    root: str            # version-0 fingerprint: the stable client handle
    fingerprint: str     # content fingerprint of the committed version
    version: int         # chain position the batch committed as
    num_lines: int
    inserted: int
    deleted: int
    repair: Optional[Dict[str, object]] = None


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the serving stack (see class docstrings for roles)."""

    structure: str = "pmr"        # default index family for probes
    capacity: int = 8             # bucket capacity / R-tree M
    min_fill: int = 2             # R-tree m
    max_batch: int = 64           # coalescing count trigger
    max_wait: float = 0.002       # coalescing deadline trigger (seconds)
    executor: str = "thread"      # "thread" (GIL-shared) | "process" (multi-core)
    workers: int = 4              # executor threads / worker processes
    queue_depth: int = 64         # bounded executor queue
    mp_start: Optional[str] = None    # process start method (None: auto)
    job_timeout: Optional[float] = None  # per-job wall cap, process backend
    #: shared-memory arena byte budget for the process backend.
    #: ``None`` (default): arena enabled, unbounded; ``0``: arena
    #: disabled (every dataset ships over the pipe); ``> 0``: publishes
    #: beyond the budget are refused and fall back to pipe shipping.
    shm_budget_bytes: Optional[int] = None
    cache_capacity: int = 8       # LRU-cached built indexes
    default_timeout: Optional[float] = 30.0  # sync helper timeout (seconds)
    shards: int = 1               # >1: space-sorted sharded indexes
    ordering: str = "morton"      # shard cut order: morton | hilbert
    # -- adaptive serving --------------------------------------------------
    adaptive: bool = False        # self-tuning controller (engine/adaptive.py)
    target_p95_ms: float = 25.0   # latency target the coalescer tuner chases
    skew_threshold: float = 3.0   # shard imbalance triggering online re-shard
    adaptive_interval: float = 0.25   # controller tick period (seconds)
    versions_retained: int = 2    # dataset versions kept warm (MVCC)
    cache_dir: Optional[str] = None   # persistent index store directory
    disk_budget_bytes: Optional[int] = None  # store byte budget (None: unbounded)
    # -- resilience -------------------------------------------------------
    retry_attempts: int = 3       # tries per retrying site (1: no retries)
    retry_base_delay: float = 0.002   # first backoff (seconds)
    retry_max_delay: float = 0.05     # backoff cap (seconds)
    breaker_threshold: int = 5    # consecutive failures tripping a breaker
    breaker_reset: float = 5.0    # open -> half-open probe delay (seconds)
    brute_fallback: bool = False  # serve brute-force while a breaker is open
    fault_plan: Optional[FaultPlan] = None  # chaos plan (None: no injection)
    # -- durability -------------------------------------------------------
    journal_dir: Optional[str] = None  # WAL directory (None: no journal)
    journal_fsync: str = "commit"      # "commit": fsync per append | "none"
    checkpoint_every: int = 0          # auto-checkpoint cadence (0: manual)
    journal_segment_bytes: int = 4 << 20   # WAL segment rotation threshold

    def __post_init__(self) -> None:
        if self.structure not in _FAMILY:
            raise ValueError(f"unknown structure {self.structure!r}")
        if self.executor not in EXECUTORS:
            raise ValueError(f"unknown executor {self.executor!r}; "
                             f"choose from {EXECUTORS}")
        if self.mp_start is not None \
                and self.mp_start not in ("fork", "forkserver", "spawn"):
            raise ValueError(f"unknown mp_start {self.mp_start!r}")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError("job_timeout must be > 0")
        if self.shm_budget_bytes is not None and self.shm_budget_bytes < 0:
            raise ValueError("shm_budget_bytes must be >= 0")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.ordering not in ORDERINGS:
            raise ValueError(f"unknown ordering {self.ordering!r}; "
                             f"choose from {ORDERINGS}")
        if self.target_p95_ms <= 0:
            raise ValueError("target_p95_ms must be > 0")
        if self.skew_threshold <= 1:
            raise ValueError("skew_threshold must be > 1")
        if self.adaptive_interval <= 0:
            raise ValueError("adaptive_interval must be > 0")
        if self.versions_retained < 1:
            raise ValueError("versions_retained must be >= 1")
        if self.disk_budget_bytes is not None:
            if self.cache_dir is None:
                raise ValueError("disk_budget_bytes requires cache_dir")
            if self.disk_budget_bytes < 0:
                raise ValueError("disk_budget_bytes must be >= 0")
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")
        if self.retry_base_delay < 0 or self.retry_max_delay < 0:
            raise ValueError("retry delays must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_reset < 0:
            raise ValueError("breaker_reset must be >= 0")
        if self.journal_fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown journal_fsync {self.journal_fsync!r}; "
                             f"choose from {FSYNC_POLICIES}")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.checkpoint_every and self.journal_dir is None:
            raise ValueError("checkpoint_every requires journal_dir")
        if self.journal_segment_bytes < 4096:
            raise ValueError("journal_segment_bytes must be >= 4096")


class SpatialQueryEngine:
    """Concurrent batched query serving over the paper's structures."""

    def __init__(self, config: Optional[EngineConfig] = None, **overrides):
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config or keyword overrides")
        self.config = config
        self.stats = EngineStats()
        self.faults = (FaultInjector(config.fault_plan,
                                     observer=self.stats.record_fault)
                       if config.fault_plan is not None
                       and config.fault_plan.specs else None)
        self._retry = RetryPolicy(attempts=config.retry_attempts,
                                  base_delay=config.retry_base_delay,
                                  max_delay=config.retry_max_delay)
        self._rng = random.Random(0xF417)  # deterministic backoff jitter
        self.store = None
        if config.cache_dir is not None:
            from ..store import IndexStore
            self.store = IndexStore(config.cache_dir,
                                    budget_bytes=config.disk_budget_bytes,
                                    observer=self.stats.record_store_event,
                                    retry=self._retry, injector=self.faults)
        self.registry = IndexRegistry(
            capacity=config.cache_capacity, store=self.store,
            injector=self.faults,
            versions_retained=config.versions_retained)
        self._is_process = config.executor == "process"
        # incremental shard repair serves both backends: the commit
        # path makes every repaired payload worker-visible (store bytes
        # and/or arena pages) *before* reads flip, and falls back to a
        # canonical rebuild when it cannot -- so workers always agree
        # with the parent's shard cuts (registry.repair_enabled stays on)
        self._mutation_lock = threading.Lock()
        self._mutation_root_locks: Dict[str, threading.Lock] = {}
        self._mutation_threads: List[threading.Thread] = []
        # write-ahead journals, one per mutation chain, keyed by the
        # chain's *current* anchor (after recovery that is the
        # checkpoint fingerprint, not the original handle)
        self._journal_dir = config.journal_dir
        self._journals: Dict[str, MutationJournal] = {}
        self._ckpt_counts: Dict[str, int] = {}
        # shared-memory data plane: on by default for the process
        # backend (shm_budget_bytes=0 disables it); datasets and
        # prebuilt index payloads cross as handles, not pipe bytes
        self._arena: Optional[ShmArena] = None
        if self._is_process and (config.shm_budget_bytes is None
                                 or config.shm_budget_bytes > 0):
            try:
                self._arena = ShmArena(budget_bytes=config.shm_budget_bytes)
            except Exception:   # no usable shm: degrade to pipe shipping
                self._arena = None
        self.registry.arena = self._arena
        if self._is_process:
            self._executor = ProcessBackend(
                workers=config.workers, queue_depth=config.queue_depth,
                injector=self.faults, cache_dir=config.cache_dir,
                fault_plan=config.fault_plan,
                dataset_provider=self.registry.dataset_snapshot,
                handle_provider=(self._job_handles
                                 if self._arena is not None else None),
                on_event=self._on_executor_event, retry=self._retry,
                mp_start=config.mp_start, job_timeout=config.job_timeout)
        else:
            self._executor = BoundedExecutor(workers=config.workers,
                                             queue_depth=config.queue_depth,
                                             injector=self.faults)
        self.breakers = BreakerBoard(
            failure_threshold=config.breaker_threshold,
            reset_timeout=config.breaker_reset,
            listener=self.stats.record_breaker_event)
        self._coalescer = Coalescer(self._dispatch,
                                    max_batch=config.max_batch,
                                    max_wait=config.max_wait)
        # online re-shard overrides: root -> (shards, ordering, gen).
        # The generation feeds the index *key*, so a rebalance mints
        # fresh cache/store/arena entries and worker tree caches (keyed
        # by store key id) can never serve a stale decomposition
        self._shard_overrides: Dict[str, Tuple[int, str, int]] = {}
        self.adaptive: Optional[AdaptiveController] = None
        if config.adaptive:
            self.adaptive = AdaptiveController(
                self, target_p95_ms=config.target_p95_ms,
                skew_threshold=config.skew_threshold,
                interval=config.adaptive_interval)
            self.adaptive.start()
        self._closed = False

    # -- datasets --------------------------------------------------------

    def register(self, lines: np.ndarray, domain: Optional[int] = None) -> str:
        """Register a segment map; returns the fingerprint probes use.

        With the adaptive controller enabled, a *new* dataset's shard
        count and curve ordering are chosen by a cheap measured probe
        (:func:`~repro.engine.adaptive.probe_shard_params`) instead of
        the static config defaults; the choice shows up in the
        ``adaptive`` health block and can later be revised by an online
        re-shard.
        """
        fp = self.registry.register(lines, domain=domain)
        if self.adaptive is not None \
                and fp not in self.adaptive.initial_choices \
                and self.registry.resolve(fp).root == fp:
            k, ordn = self.adaptive.choose_initial(
                fp, self.registry.dataset(fp),
                float(self.registry.domain(fp)))
            if (k, ordn) != (self.config.shards, self.config.ordering):
                self._shard_overrides[fp] = (k, ordn, 0)
        return fp

    def submit_insert(self, fingerprint: str, new_lines) -> Future:
        """Asynchronously append segments to a registered map.

        Mutations coalesce per dataset *root* like probes coalesce per
        index: every insert/delete submitted within the batch window
        commits as **one** new version (deletes first, then inserts
        appended in submission order).  The future resolves to a
        :class:`MutationResult` once the new version's default index is
        warm and reads have flipped to it; reads admitted before the
        flip finish against the snapshot they resolved at submit time.
        """
        arr = np.asarray(new_lines, dtype=np.float64).reshape(-1, 4)
        return self._submit_mutation("insert", fingerprint, arr)

    def submit_delete(self, fingerprint: str, ids) -> Future:
        """Asynchronously remove segments by current-version row id.

        Ids are validated against the version the batch commits over;
        a probe with out-of-range ids fails alone, without poisoning
        the rest of its batch.  See :meth:`submit_insert`.
        """
        arr = np.asarray(ids, dtype=np.int64).reshape(-1)
        return self._submit_mutation("delete", fingerprint, arr)

    def _submit_mutation(self, op: str, fingerprint: str,
                         payload: np.ndarray) -> Future:
        info = self.registry.resolve(fingerprint)   # KeyError: unknown map
        self.stats.record_submitted(op)
        probe = Probe((op, payload))
        try:
            self._coalescer.submit(("mutate", info.root), probe)
        except RejectedError as exc:
            self.stats.record_rejected(exc.reason)
            probe.future.set_exception(exc)
        return probe.future

    def insert_lines(self, fingerprint: str, new_lines,
                     timeout: Optional[float] = None) -> str:
        """Blocking insert; returns the committed version's fingerprint."""
        fut = self.submit_insert(fingerprint, new_lines)
        self.flush()
        return self._await(fut, timeout).fingerprint

    def delete_lines(self, fingerprint: str, ids,
                     timeout: Optional[float] = None) -> str:
        """Blocking delete; returns the committed version's fingerprint."""
        fut = self.submit_delete(fingerprint, ids)
        self.flush()
        return self._await(fut, timeout).fingerprint

    def datasets_info(self) -> List[Dict[str, object]]:
        """One row per registered dataset (fingerprint, size, domain).

        The serving front-end (:mod:`repro.net`) exposes this as the
        ``datasets`` request kind so network clients can discover what
        to probe without an out-of-band fingerprint exchange.
        """
        return self.registry.datasets_info()

    def warm(self, fingerprint: str, structure: Optional[str] = None) -> None:
        """Build (or touch) the index ahead of traffic.

        Under the process backend this also warms the *workers*: the
        built payload is published **once** into the shared-memory
        arena (one block per fingerprint, every worker maps the same
        pages zero-copy) and persisted to the store (when one is
        attached) as the fallback warm path, then one best-effort warm
        job per worker pre-materialises it off the serving path.  Only
        with neither arena nor store do the warm jobs ship the dataset
        snapshot, which still spares the first real batch the cold
        build.
        """
        key = self._index_key(self.registry.resolve(fingerprint).fingerprint,
                              structure)
        entry = self.registry.get(key.fingerprint, key.structure,
                                  **dict(key.params))
        if not self._is_process:
            return
        if self.store is not None and not self.store.contains(key):
            try:
                self.store.put(key, entry.tree,
                               build_steps=entry.build_steps,
                               build_primitives=entry.build_primitives,
                               num_lines=entry.num_lines)
            except (OSError, InjectedFault):
                pass   # disk full: workers will cold-build instead
        self._publish_index(key, entry.tree)
        ref = self._index_ref(key)
        futs = []
        for _ in range(self.config.workers):
            try:
                futs.append(self._executor.submit(JobSpec(op="warm",
                                                          index=ref)))
            except RejectedError:
                break   # pool busy: real traffic will warm it
        for fut in futs:
            try:
                fut.result(self.config.default_timeout)
            except Exception:
                pass    # warm-up is advisory, never fails the caller

    # -- asynchronous probes ---------------------------------------------

    def submit_window(self, fingerprint: str, rect,
                      structure: Optional[str] = None,
                      exact: bool = True,
                      deadline: Optional[float] = None) -> Future:
        rect = np.asarray(rect, dtype=float).reshape(4)
        return self._submit("window", fingerprint, rect, structure, exact,
                            deadline)

    def submit_point(self, fingerprint: str, point,
                     structure: Optional[str] = None,
                     exact: bool = True,
                     deadline: Optional[float] = None) -> Future:
        pt = np.asarray(point, dtype=float).reshape(2)
        structure = structure or self.config.structure
        if _FAMILY[structure] == "quadtree":
            dom = self.registry.domain(
                self.registry.resolve(fingerprint).fingerprint)
            if not (0 <= pt[0] <= dom and 0 <= pt[1] <= dom):
                # mirror the scalar query's error without failing the batch
                fut: Future = Future()
                fut.set_exception(
                    ValueError(f"point {tuple(pt)} outside the domain"))
                self.stats.record_submitted("point")
                self.stats.record_failed()
                return fut
        return self._submit("point", fingerprint, pt, structure, exact,
                            deadline)

    def submit_nearest(self, fingerprint: str, point,
                       structure: Optional[str] = None,
                       deadline: Optional[float] = None) -> Future:
        pt = np.asarray(point, dtype=float).reshape(2)
        return self._submit("nearest", fingerprint, pt, structure, True,
                            deadline)

    def submit_join(self, fingerprint_a: str, fingerprint_b: str,
                    structure: Optional[str] = None) -> Future:
        """Spatial join of two registered maps.

        Joins coalesce like probes do: pairs submitted within the batch
        window for the same structure share **one** executor job (one
        process-boundary crossing under the process backend) with
        per-pair outcomes, so one bad pair fails only its own future.
        """
        structure = structure or self.config.structure
        if structure not in _FAMILY:
            raise ValueError(f"unknown structure {structure!r}")
        self.stats.record_submitted("join")
        infos = (self.registry.resolve(fingerprint_a),
                 self.registry.resolve(fingerprint_b))
        fps = tuple(i.fingerprint for i in infos)
        if not all(self.breakers.allow(fp) for fp in fps):
            if not self.config.brute_fallback:
                return self._fail_fast("join", fps)
            return self._submit_brute_join(fps)
        probe = Probe(fps)
        probe.future.version = max(i.version for i in infos)
        probe.future.versions = tuple(i.version for i in infos)
        for fp in fps:
            self.registry.pin(fp)
        probe.future.add_done_callback(
            lambda _f, pair=fps: [self.registry.unpin(fp) for fp in pair])
        try:
            self._coalescer.submit(("join", structure), probe)
        except RejectedError as exc:
            self.stats.record_rejected(exc.reason)
            probe.future.set_exception(exc)
        return probe.future

    def _submit_brute_join(self, fps: Tuple[str, str]) -> Future:
        """Degraded join (breaker open, ``brute_fallback`` on)."""
        if self._is_process:
            try:
                pair = (self._index_ref(self._index_key(fps[0], None)),
                        self._index_ref(self._index_key(fps[1], None)))
            except KeyError as exc:
                fut: Future = Future()
                fut.set_exception(exc)
                self.stats.record_failed()
                return fut
            spec = JobSpec(op="join", pairs=(pair,), brute=True)
            return self._deliver_join_spec(spec, [Probe(fps)],
                                           time.monotonic(), brute=True)

        def job(machine):
            pairs = brute_join(self.registry.dataset(fps[0]),
                               self.registry.dataset(fps[1]))
            self.stats.record_fallback()
            self.stats.record_batch("brute:join", 1, machine.steps,
                                    machine.total_primitives)
            return pairs

        return self._spawn(job)

    # -- synchronous helpers ---------------------------------------------

    def window(self, fingerprint: str, rect, structure: Optional[str] = None,
               exact: bool = True, timeout: Optional[float] = None,
               deadline: Optional[float] = None) -> np.ndarray:
        """Blocking window query; raises TimeoutError past ``timeout``.

        With a ``deadline`` (seconds) on a sharded index, an expired
        fan-out returns a :class:`PartialResult` instead of raising.
        """
        return self._await(self.submit_window(fingerprint, rect, structure,
                                              exact, deadline), timeout)

    def point(self, fingerprint: str, point, structure: Optional[str] = None,
              exact: bool = True, timeout: Optional[float] = None,
              deadline: Optional[float] = None) -> np.ndarray:
        """Blocking point query."""
        return self._await(self.submit_point(fingerprint, point, structure,
                                             exact, deadline), timeout)

    def nearest(self, fingerprint: str, point,
                structure: Optional[str] = None,
                timeout: Optional[float] = None,
                deadline: Optional[float] = None) -> Tuple[int, float]:
        """Blocking nearest-line query; returns ``(line id, distance)``."""
        return self._await(self.submit_nearest(fingerprint, point, structure,
                                               deadline), timeout)

    def join(self, fingerprint_a: str, fingerprint_b: str,
             structure: Optional[str] = None,
             timeout: Optional[float] = None) -> np.ndarray:
        """Blocking spatial join of two registered maps."""
        return self._await(self.submit_join(fingerprint_a, fingerprint_b,
                                            structure), timeout)

    # -- durability ------------------------------------------------------

    def recover(self) -> List[RecoveryReport]:
        """Replay every journal under ``journal_dir`` into this engine.

        Call on a fresh engine after a crash (the serve CLI does this
        before listening).  Each chain's journal is replayed over its
        checkpoint snapshot with every step proven by fingerprint
        identity (:func:`repro.durability.replay_journal`), the original
        client handle is aliased onto the recovered chain so pre-crash
        fingerprints keep resolving, and the journal is re-attached for
        new commits.  Returns one :class:`RecoveryReport` per chain;
        idempotent -- a second call skips already-active records.
        """
        if self._journal_dir is None:
            return []
        reports: List[RecoveryReport] = []
        for name in journal_roots(self._journal_dir):
            directory = os.path.join(self._journal_dir, name)
            # an attached journal may be keyed by a different chain root
            # than its directory name (a previous recover re-keyed it)
            attached = next((k for k, j in self._journals.items()
                             if j.directory == directory), None)
            if attached is not None:
                journal = self._journals[attached]
            else:
                journal = MutationJournal(
                    directory,
                    fsync=self.config.journal_fsync,
                    segment_bytes=self.config.journal_segment_bytes,
                    observer=self.stats.record_wal_event)
            try:
                report = replay_journal(journal, self.registry, name)
            except BaseException:
                if attached is None:
                    journal.close()
                raise
            if report.chain_root != name:
                self.registry.adopt_root(name, report.fingerprint)
            if attached is not None:
                self._journals.pop(attached, None)
            self._journals[report.chain_root] = journal
            self.stats.record_wal_event("recovery")
            if report.records_replayed:
                self.stats.record_wal_event("wal_replay",
                                            report.records_replayed)
            reports.append(report)
        return reports

    def checkpoint(self, fingerprint: str) -> Dict[str, object]:
        """Checkpoint the chain's head snapshot; truncates the WAL prefix.

        Persists the head's default index to the store first (when one
        is attached), then atomically snapshots the dataset into the
        journal directory and drops every fully-covered segment.
        Returns the checkpoint manifest.
        """
        info = self.registry.resolve(fingerprint)
        with self._root_lock(info.root):
            return self._checkpoint_locked(info.root)

    # -- adaptive serving ------------------------------------------------

    def _shard_skew_parts(
            self, fingerprint: str
    ) -> Tuple[Optional[float], Optional[float], int]:
        """``(size_skew, time_skew, shards)`` of a live decomposition.

        **Size** skew is the largest shard over the balanced share --
        the ratio repair drift grows.  **Service-time** skew is the
        slowest shard EWMA over the median -- which catches a traffic
        hotspot even when the cut is numerically balanced.  ``(None,
        None, 0)`` when the index is unsharded or not in the memory
        tier: a decomposition nobody keeps warm is not worth
        rebalancing.
        """
        try:
            key = self._index_key(fingerprint, None)
        except (KeyError, ValueError):
            return None, None, 0
        if int(dict(key.params).get("shards", 1)) <= 1:
            return None, None, 0
        entry = self.registry.peek(key)
        if entry is None or not isinstance(entry.tree, ShardedIndex):
            return None, None, 0
        tree: ShardedIndex = entry.tree
        K = tree.num_shards
        if K <= 1:
            return None, None, K
        sizes = tree.shard_sizes()
        n = int(sizes.sum())
        size_skew = float(sizes.max()) / max(-(-n // K), 1) if n else 0.0
        time_skew = None
        ewmas = sorted(
            self.stats.shard_service_snapshot(fingerprint).values())
        if len(ewmas) >= 2:
            med = ewmas[len(ewmas) // 2]
            if med > 0:
                time_skew = ewmas[-1] / med
        return size_skew, time_skew, K

    def _shard_skew(self, fingerprint: str) -> Tuple[Optional[float], int]:
        """``(skew, shards)``: the worse of the two skew components."""
        size_skew, time_skew, K = self._shard_skew_parts(fingerprint)
        parts = [s for s in (size_skew, time_skew) if s is not None]
        return (max(parts) if parts else None), K

    def reshard(self, fingerprint: str, shards: Optional[int] = None,
                ordering: Optional[str] = None,
                structure: Optional[str] = None,
                force: bool = False) -> Optional[Dict[str, object]]:
        """Rebalance a dataset's shard decomposition online.

        Runs through the same stage -> warm -> flip discipline as a
        mutation commit, under the chain's root lock: the rebalanced
        index is built (and, under the process backend, published to
        the store/arena) against a **fresh generation key** before the
        per-root override flips new probes onto it -- readers never
        block, and batches already in flight finish against the
        decomposition they resolved.  With neither ``shards`` nor
        ``ordering`` given, the current cut is kept and the re-shard
        only fires when :meth:`_shard_skew` exceeds
        ``config.skew_threshold`` (``force=True`` overrides); returns
        the re-shard report, or ``None`` when balance was fine.  The
        old generation's entries are left for version-retirement GC --
        in-flight fan-outs may still hold their pages.
        """
        info = self.registry.resolve(fingerprint)
        root = info.root
        with self._root_lock(root):
            started = time.monotonic()
            cur = self.registry.resolve(root)
            old_key = self._index_key(cur.fingerprint, structure)
            old_params = dict(old_key.params)
            old_k = int(old_params.get("shards", 1))
            old_ord = str(old_params.get("ordering", self.config.ordering))
            K = int(shards) if shards is not None else old_k
            ordn = str(ordering) if ordering is not None else old_ord
            if K < 1:
                raise ValueError("shards must be >= 1")
            if ordn not in ORDERINGS:
                raise ValueError(f"unknown ordering {ordn!r}; "
                                 f"choose from {ORDERINGS}")
            if K <= 1 and old_k <= 1:
                return None   # nothing is or would become sharded
            size_skew, time_skew, _ = self._shard_skew_parts(
                cur.fingerprint)
            parts = [s for s in (size_skew, time_skew) if s is not None]
            skew_before = max(parts) if parts else None
            if shards is None and ordering is None and not force \
                    and skew_before is not None \
                    and skew_before > self.config.skew_threshold \
                    and (size_skew is None
                         or size_skew <= self.config.skew_threshold):
                # the cut is numerically balanced but a traffic hotspot
                # drags one shard's service time: re-cutting at the
                # same K reproduces the same decomposition, so refine
                # instead -- double K (capped) to spread the hot region
                # across more shards
                K = min(old_k * 2, 32)
            if (K, ordn) == (old_k, old_ord) and not force \
                    and (skew_before is None
                         or skew_before <= self.config.skew_threshold):
                return None   # same cut requested and balance is fine
            ov = self._shard_overrides.get(root)
            gen = (ov[2] if ov is not None else 0) + 1
            new_params = {k: v for k, v in old_params.items()
                          if k not in ("shards", "ordering", "gen")}
            if K > 1:
                new_params.update(shards=K, ordering=ordn, gen=gen)
            # warm build off the read path: probes keep resolving the
            # old generation until the override flips below
            entry = self.registry.get(cur.fingerprint, old_key.structure,
                                      **new_params)
            new_key = entry.key
            if self._is_process and K > 1:
                if self.store is not None \
                        and not self.store.contains(new_key):
                    try:
                        self.store.put(new_key, entry.tree,
                                       build_steps=entry.build_steps,
                                       build_primitives=entry.build_primitives,
                                       num_lines=entry.num_lines)
                    except (OSError, InjectedFault):
                        pass
                self._publish_index(new_key, entry.tree)
            self._shard_overrides[root] = (K, ordn, gen)
            self.stats.record_reshard()
            # the old decomposition's service EWMAs must not judge the
            # new one
            self.stats.drop_shard_service(cur.fingerprint)
            skew_after, _ = self._shard_skew(cur.fingerprint)
            return {"root": root, "fingerprint": cur.fingerprint,
                    "version": cur.version, "gen": gen,
                    "shards": [old_k, K], "ordering": [old_ord, ordn],
                    "skew_before": (round(skew_before, 3)
                                    if skew_before is not None else None),
                    "skew_after": (round(skew_after, 3)
                                   if skew_after is not None else None),
                    "build_ms": round((time.monotonic() - started) * 1e3, 3)}

    # -- lifecycle / introspection ---------------------------------------

    def flush(self) -> None:
        """Dispatch all pending probes now (deterministic batching in
        tests) and wait for in-flight mutation commits to settle."""
        self._coalescer.flush()
        while True:
            with self._mutation_lock:
                alive = [t for t in self._mutation_threads if t.is_alive()]
                self._mutation_threads = alive
            if not alive:
                return
            for t in alive:
                t.join()

    def snapshot(self) -> Dict[str, object]:
        """Engine counters + cache stats + current queue/pending gauges."""
        out = self.stats.snapshot()
        out["cache"] = self.registry.snapshot()
        out["queue_depth"] = self._executor.queue_depth
        out["pending_probes"] = self._coalescer.pending
        if self._arena is not None:
            out["shm"] = self._arena.snapshot()
        return out

    def health(self) -> Dict[str, object]:
        """Liveness snapshot: breaker states plus the resilience counters.

        ``status`` is ``"ok"`` while every breaker is closed and
        ``"degraded"`` when any fingerprint is open or half-open (some
        traffic fails fast or runs on the brute-force fallback).  The
        full per-fingerprint breaker map, retry counters, partial-result
        counters, and the fault-injector state ride along -- what a
        load balancer's health endpoint would serve.
        """
        breakers = self.breakers.snapshot()
        not_closed = [k for k, b in breakers.items() if b["state"] != "closed"]
        s = self.stats
        executor = {"backend": self._executor.kind,
                    "workers": self.config.workers}
        if self._is_process:
            executor.update({
                "start_method": self._executor.start_method,
                "restarts": s.worker_restarts,
                "datasets_shipped": s.datasets_shipped,
                "dataset_ship_bytes": s.dataset_ship_bytes,
                "ipc_bytes_sent": s.ipc_bytes_sent,
                "ipc_bytes_resent": s.ipc_bytes_resent,
                "ipc_bytes_received": s.ipc_bytes_received,
                "ipc_jobs": s.ipc_jobs,
                "worker_warm_loads": s.worker_warm_loads,
                "worker_cold_builds": s.worker_cold_builds,
                "shm_attaches": s.shm_attaches,
                "workers_seen": sorted(s.workers),
                "shm": (self._arena.snapshot() if self._arena is not None
                        else {"enabled": False}),
            })
        return {
            "status": "degraded" if not_closed else "ok",
            "closed": self._closed,
            "executor": executor,
            "breakers": breakers,
            "breakers_not_closed": sorted(not_closed),
            "breaker_trips": s.breaker_trips,
            "breaker_fast_fails": s.breaker_fast_fails,
            "breaker_half_opens": s.breaker_half_opens,
            "breaker_closes": s.breaker_closes,
            "retries": dict(s.retries),
            "partial_batches": s.partial_batches,
            "partial_results": s.partial_results,
            "shards_dropped": s.shards_dropped,
            "fallbacks": s.fallbacks,
            "cancels": s.cancels,
            "mutation_batches": s.mutation_batches,
            "mutation_failures": s.mutation_failures,
            "wal": {
                "enabled": self._journal_dir is not None,
                "journal_dir": self._journal_dir,
                "fsync_policy": self.config.journal_fsync,
                "wal_appends": s.wal_appends,
                "wal_append_failures": s.wal_append_failures,
                "wal_bytes": s.wal_bytes,
                "fsyncs": s.fsyncs,
                "wal_abandons": s.wal_abandons,
                "torn_tail_truncations": s.torn_tail_truncations,
                "checkpoints": s.checkpoints,
                "checkpoint_failures": s.checkpoint_failures,
                "recoveries": s.recoveries,
                "wal_records_replayed": s.wal_records_replayed,
                "journals": {root: j.snapshot()
                             for root, j in self._journals.items()},
            },
            "adaptive": (self.adaptive.snapshot()
                         if self.adaptive is not None
                         else {"enabled": False}),
            "versions_committed": self.registry.versions_committed,
            "versions_collected": self.registry.versions_collected,
            "queue_depth": self._executor.queue_depth,
            "pending_probes": self._coalescer.pending,
            "fault_injection": (self.faults.snapshot()
                                if self.faults is not None else None),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # the controller first: a tick racing the teardown could submit
        # a re-shard build against a closing registry
        if self.adaptive is not None:
            self.adaptive.close()
        self._coalescer.close()
        with self._mutation_lock:
            pending = list(self._mutation_threads)
        for t in pending:
            t.join()
        self._executor.shutdown(wait=True)
        # graceful-shutdown durability point: even under the "none"
        # fsync policy the journals end fully flushed and fsync'd
        for journal in self._journals.values():
            journal.close()
        # warm shutdown: with a store attached, persist the in-memory
        # tier so the next process starts from disk hits, not rebuilds
        if self.store is not None:
            self.registry.spill_all()
        # unlink every published block only after the workers are gone
        if self._arena is not None:
            self.registry.arena = None
            self._arena.close()

    def __enter__(self) -> "SpatialQueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -------------------------------------------------------

    def _on_executor_event(self, name: str, value=None) -> None:
        """Process-backend telemetry -> the stats layer (and fault replay)."""
        if name == "restart":
            self.stats.record_restart()
            if self._arena is not None:
                # the blocks survive (the parent owns them) but every
                # worker mapping died with the pool
                self._arena.reset_live_attachments()
        elif name == "crash_retry":
            self.stats.record_retry("executor.crash")
        elif name == "dataset_shipped":
            self.stats.record_dataset_shipped(int(value))
        elif name == "dataset_ship_bytes":
            self.stats.record_dataset_shipped(0, nbytes=int(value))
        elif name == "ipc_sent":
            self.stats.record_ipc(sent=int(value))
        elif name == "ipc_resent":
            self.stats.record_ipc(resent=int(value))
        elif name == "ipc_received":
            self.stats.record_ipc(received=int(value))
        elif name == "worker_result":
            wr: WorkerResult = value
            self.stats.record_worker(wr.pid, wr.jobs, wr.warm_loads,
                                     wr.cold_builds, wr.cached_trees,
                                     shm_attaches=len(wr.shm_attached))
            if self._arena is not None and wr.shm_attached:
                self._arena.note_attaches(wr.shm_attached)
            for site, kind in wr.faults:
                # latency/stall specs fired inside the worker; replay
                # them here so `faults_injected` covers both sides
                self.stats.record_fault(site, kind)

    def _index_key(self, fingerprint: str, structure: Optional[str]) -> IndexKey:
        structure = structure or self.config.structure
        if structure not in _FAMILY:
            raise ValueError(f"unknown structure {structure!r}")
        if structure == "rtree":
            params = {"min_fill": self.config.min_fill,
                      "capacity": self.config.capacity}
        elif structure == "pmr":
            params = {"capacity": self.config.capacity}
        else:
            params = {}
        shards, ordering, gen = (self.config.shards,
                                 self.config.ordering, 0)
        override = self._shard_override_for(fingerprint)
        if override is not None:
            shards, ordering, gen = override
        if shards > 1:
            params["shards"] = shards
            params["ordering"] = ordering
            if gen:
                params["gen"] = gen
        return IndexKey.make(fingerprint, structure, **params)

    def _shard_override_for(
            self, fingerprint: str) -> Optional[Tuple[int, str, int]]:
        """The dataset's live (shards, ordering, gen) override, if any.

        Overrides are kept per *root* (the whole chain reshapes
        together -- a mutation commit inherits the current cut), set by
        the register-time probe and advanced by :meth:`reshard`.
        """
        if not self._shard_overrides:
            return None
        try:
            root = self.registry.resolve(fingerprint).root
        except KeyError:
            return None
        return self._shard_overrides.get(root)

    def _submit(self, kind: str, fingerprint: str, payload: np.ndarray,
                structure: Optional[str], exact: bool,
                deadline: Optional[float] = None) -> Future:
        # snapshot isolation: the probe binds to the version that is
        # current *now* -- a mutation committing after this line cannot
        # redirect it, because the group key carries the resolved
        # content fingerprint, not the client's chain handle
        info = self.registry.resolve(fingerprint)
        fingerprint = info.fingerprint
        key = (self._index_key(fingerprint, structure), kind, bool(exact))
        self.stats.record_submitted(kind)
        if not self.breakers.allow(fingerprint):
            if self.config.brute_fallback:
                return self._submit_brute(kind, fingerprint, payload)
            return self._fail_fast(kind, (fingerprint,))
        probe = Probe(payload,
                      deadline_at=(time.monotonic() + deadline
                                   if deadline is not None else None))
        probe.future.version = info.version
        # pin the snapshot: retention GC may not reclaim this version's
        # dataset (the brute fallback needs it) until the read settles
        self.registry.pin(fingerprint)
        probe.future.add_done_callback(
            lambda _f, fp=fingerprint: self.registry.unpin(fp))
        try:
            self._coalescer.submit(key, probe)
        except RejectedError as exc:
            self.stats.record_rejected(exc.reason)
            probe.future.set_exception(exc)
        return probe.future

    def _fail_fast(self, kind: str, fingerprints) -> Future:
        """An already-failed future for a probe refused by an open breaker."""
        self.stats.record_breaker_event("fast_fail")
        self.stats.record_failed()
        fp = next((f for f in fingerprints
                   if self.breakers.state(f) != "closed"), fingerprints[0])
        fut: Future = Future()
        fut.set_exception(CircuitOpenError(
            f"circuit open for dataset {fp!r} ({kind} probe refused)",
            key=fp, retry_after=self.breakers.retry_after(fp)))
        return fut

    def _submit_brute(self, kind: str, fingerprint: str,
                      payload: np.ndarray) -> Future:
        """Degraded service: answer from the raw segments, no index.

        Runs while the fingerprint's breaker is open and
        ``brute_fallback`` is enabled -- an O(n) scan keeps answers
        flowing (exact-geometry semantics) until the index path heals.
        """
        started = time.monotonic()
        if self._is_process:
            key = self._index_key(fingerprint, None)
            spec = JobSpec(op="brute", kind=kind, index=self._index_ref(key),
                           payloads=payload[None, :])
            fut = self._spawn(spec)
            out: Future = Future()

            def deliver(done: Future) -> None:
                exc = done.exception()
                if exc is not None:
                    self.stats.record_failed()
                    _reject(out, exc)
                    return
                wr: WorkerResult = done.result()
                self.stats.record_fallback()
                self.stats.record_batch(f"brute:{kind}", 1, wr.steps,
                                        wr.primitives,
                                        time.monotonic() - started)
                _resolve(out, wr.values[0])

            fut.add_done_callback(deliver)
            return out

        def job(machine):
            lines = self.registry.dataset(fingerprint)
            if kind == "window":
                res = brute_window_query(lines, payload)
            elif kind == "point":
                res = brute_point_query(lines, float(payload[0]),
                                        float(payload[1]))
            else:
                res = brute_nearest(lines, float(payload[0]),
                                    float(payload[1]))
            self.stats.record_fallback()
            self.stats.record_batch(f"brute:{kind}", 1, machine.steps,
                                    machine.total_primitives,
                                    time.monotonic() - started)
            return res

        return self._spawn(job)

    def _spawn(self, job) -> Future:
        """Submit one executor job, converting a rejection into a future."""
        try:
            return self._submit_job_with_retry(job)
        except RejectedError as exc:
            self.stats.record_rejected(exc.reason)
            fut: Future = Future()
            fut.set_exception(exc)
            return fut

    def _submit_job_with_retry(self, job) -> Future:
        """Executor submit with backoff on transient ``queue_full``.

        A saturated queue usually drains within a backoff or two;
        ``shutdown``/``closed`` rejections are permanent and re-raise
        immediately.  The caller's thread naps, which is exactly the
        backpressure a full queue should exert on producers.
        """
        attempt = 0
        while True:
            try:
                return self._executor.submit(job)
            except RejectedError as exc:
                if exc.reason != "queue_full" \
                        or attempt + 1 >= self._retry.attempts:
                    raise
                self.stats.record_retry("executor.submit")
                time.sleep(self._retry.delay(attempt, self._rng))
                attempt += 1

    def _await(self, future: Future, timeout: Optional[float]):
        timeout = self.config.default_timeout if timeout is None else timeout
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            # try to free the slot: a not-yet-started job (or a probe
            # still waiting on its batch) cancels cleanly and its
            # worker/delivery skips it; a running one must finish
            self.stats.record_timeout()
            self.stats.record_cancel(future.cancel())
            raise

    def _batch_fn(self, structure: str, kind: str, exact: bool):
        # one shared kernel table for both backends (worker.py)
        return batch_kernel(structure, kind, exact)

    def _brute_batch(self, kind: str, lines: np.ndarray,
                     payloads: np.ndarray) -> List[object]:
        """Brute-force answers for a whole batch (degraded dispatch)."""
        if kind == "window":
            return [brute_window_query(lines, r) for r in payloads]
        if kind == "point":
            return [brute_point_query(lines, float(p[0]), float(p[1]))
                    for p in payloads]
        return [brute_nearest(lines, float(p[0]), float(p[1]))
                for p in payloads]

    def _dispatch(self, group_key, probes: List[Probe]) -> None:
        """Flush callback: run one group as a single vectorized pass."""
        if group_key[0] == "join":
            self._dispatch_join(group_key[1], probes)
            return
        if group_key[0] == "mutate":
            # commits run off the dispatch thread: the new version's
            # index build must not stall read batches behind it
            t = threading.Thread(target=self._run_mutation_batch,
                                 args=(group_key[1], probes), daemon=True,
                                 name="repro-mutate")
            with self._mutation_lock:
                self._mutation_threads = [x for x in self._mutation_threads
                                          if x.is_alive()]
                self._mutation_threads.append(t)
            t.start()
            return
        index_key, kind, exact = group_key
        if int(dict(index_key.params).get("shards", 1)) > 1:
            self._dispatch_sharded(index_key, kind, exact, probes)
            return
        if self._is_process:
            self._dispatch_process(index_key, kind, exact, probes)
            return
        batch_fn = self._batch_fn(index_key.structure, kind, exact)
        started = min(p.submitted_at for p in probes)
        fingerprint = index_key.fingerprint

        def job(machine):
            payloads = np.stack([p.payload for p in probes])
            try:
                entry = self.registry.get(index_key.fingerprint,
                                          index_key.structure,
                                          **dict(index_key.params))
            except Exception:
                self.breakers.record_failure(fingerprint)
                if self.config.brute_fallback \
                        and self.breakers.state(fingerprint) == OPEN:
                    # the failure tripped (or kept) the breaker open:
                    # serve the batch from the raw segments instead
                    lines = self.registry.dataset(fingerprint)
                    results = self._brute_batch(kind, lines, payloads)
                    self.stats.record_fallback(len(probes))
                    self.stats.record_batch(
                        f"brute:{kind}", len(probes), machine.steps,
                        machine.total_primitives, time.monotonic() - started)
                    return results
                raise
            try:
                results = batch_fn(entry.tree, payloads, machine)
            except Exception:
                self.breakers.record_failure(fingerprint)
                raise
            self.breakers.record_success(fingerprint)
            self.stats.record_batch(
                f"{index_key.structure}:{kind}", len(probes), machine.steps,
                machine.total_primitives, time.monotonic() - started)
            return results

        try:
            fut = self._submit_job_with_retry(job)
        except RejectedError as exc:
            self.stats.record_rejected(exc.reason, len(probes))
            for p in probes:
                _reject(p.future, RejectedError(str(exc), reason=exc.reason))
            return

        def deliver(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                self.stats.record_failed(len(probes))
                for p in probes:
                    _reject(p.future, exc)
                return
            results = done.result()
            for p, res in zip(probes, results):
                _resolve(p.future, res)

        fut.add_done_callback(deliver)

    def _index_ref(self, key: IndexKey) -> IndexRef:
        """The picklable stand-in a worker materialises the index from."""
        return IndexRef(key.fingerprint, key.structure, key.params,
                        int(self.registry.domain(key.fingerprint)))

    # -- shared-memory data plane ----------------------------------------

    def _job_handles(self, spec: JobSpec) -> Tuple[object, ...]:
        """The arena handles one job should carry (the executor's
        ``handle_provider``).

        For every index the spec references: the dataset's ``ds:``
        block (published on first demand -- a handful of bytes per job
        thereafter, however large the dataset) and, if one was
        published by :meth:`warm` or a mutation commit, the prebuilt
        ``ix:`` payload block.
        """
        arena = self._arena
        if arena is None:
            return ()
        refs: List[IndexRef] = []
        if spec.index is not None:
            refs.append(spec.index)
        for ref_a, ref_b in spec.pairs:
            refs.append(ref_a)
            refs.append(ref_b)
        handles: List[object] = []
        seen: set = set()
        for ref in refs:
            handle = self._dataset_handle(ref)
            if handle is not None and handle.tag not in seen:
                seen.add(handle.tag)
                handles.append(handle)
            handle = arena.handle(INDEX_PREFIX + store_key_id(ref))
            if handle is not None and handle.tag not in seen:
                seen.add(handle.tag)
                handles.append(handle)
        return tuple(handles)

    def _dataset_handle(self, ref: IndexRef):
        """The ``ds:`` handle for one fingerprint, publishing on demand.

        A budget refusal (or a collected version) returns ``None`` and
        the job simply carries no handle -- the worker falls back to
        the store / ``NeedDataset`` ship path unchanged.
        """
        arena = self._arena
        tag = DATASET_PREFIX + ref.fingerprint
        handle = arena.handle(tag)
        if handle is not None:
            return handle
        try:
            lines, domain = self.registry.dataset_snapshot(ref.fingerprint)
        except KeyError:
            return None
        return arena.publish_array(
            tag, lines, meta={"fingerprint": ref.fingerprint,
                              "domain": str(int(domain))})

    def _publish_index(self, key: IndexKey, tree=None) -> None:
        """Publish one built index payload into the arena, best effort.

        Prefers mapping the store's ``.npz`` entries straight into the
        block (:meth:`~repro.store.IndexStore.payload_arrays` -- the
        disk warm path feeds the shared pages directly); falls back to
        flattening the in-memory ``tree``.  Idempotent per store key,
        silent on budget refusal.
        """
        arena = self._arena
        if arena is None:
            return
        tag = INDEX_PREFIX + store_key_id(key)
        if arena.handle(tag) is not None:
            return
        arrays = None
        if self.store is not None:
            arrays = self.store.payload_arrays(key)
        if arrays is None:
            if tree is None:
                return
            arrays = structure_payload(tree, dict(key.params))
        arena.publish_payload(tag, arrays,
                              meta={"fingerprint": key.fingerprint})

    def _worker_visible(self, key: IndexKey) -> bool:
        """Can a pool worker warm-load this exact index (arena or store)?"""
        if self._arena is not None \
                and self._arena.handle(INDEX_PREFIX + store_key_id(key)) \
                is not None:
            return True
        return self.store is not None and self.store.contains(key)

    def _share_commit(self, key: IndexKey, entry) -> object:
        """Make a freshly committed index worker-visible (process backend).

        Feeds both warm tiers -- the store (durable bytes, best effort)
        and the arena (zero-copy pages) -- so workers adopt the parent's
        build instead of each paying a rebuild.  For an incrementally
        *repaired* entry visibility is a correctness requirement, not a
        nicety: a worker that cannot load the repaired payload would
        rebuild canonically and disagree with the parent's shard plan.
        If neither tier took the payload, the repaired tree is retracted
        and rebuilt canonically here (raising like any failed warm
        build).  Returns the entry that will serve reads.
        """
        if self.store is not None and not self.store.contains(key):
            try:
                self.store.put(key, entry.tree,
                               build_steps=entry.build_steps,
                               build_primitives=entry.build_primitives,
                               num_lines=entry.num_lines)
            except (OSError, InjectedFault):
                pass   # disk full: the arena may still carry it
        self._publish_index(key, entry.tree)
        if entry.repaired_from is None or self._worker_visible(key):
            return entry
        self.registry.discard(key)
        self.registry.drop_repair_hint(key.fingerprint)
        return self.registry.get(key.fingerprint, key.structure,
                                 **dict(key.params))

    def _dispatch_process(self, index_key: IndexKey, kind: str, exact: bool,
                          probes: List[Probe]) -> None:
        """One coalesced group as one :class:`JobSpec` to the pool.

        Index materialisation happens in the worker, so breaker and
        stats accounting move to the delivery callback; the
        ``registry.get`` fault site is evaluated here for chaos parity
        with the thread path (the worker bypasses the parent registry).
        """
        started = min(p.submitted_at for p in probes)
        fingerprint = index_key.fingerprint
        payloads = np.stack([p.payload for p in probes])
        if self.faults is not None:
            try:
                self.faults.fire("registry.get", fingerprint=fingerprint,
                                 structure=index_key.structure)
            except Exception as exc:
                self._process_batch_failed(exc, index_key, kind, probes,
                                           payloads, started)
                return
        spec = JobSpec(op="batch", kind=kind,
                       index=self._index_ref(index_key),
                       payloads=payloads, exact=exact,
                       version=self.registry.version_of(fingerprint))
        try:
            fut = self._submit_job_with_retry(spec)
        except RejectedError as exc:
            self.stats.record_rejected(exc.reason, len(probes))
            for p in probes:
                _reject(p.future, RejectedError(str(exc), reason=exc.reason))
            return

        def deliver(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                self._process_batch_failed(exc, index_key, kind, probes,
                                           payloads, started)
                return
            wr: WorkerResult = done.result()
            self.breakers.record_success(fingerprint)
            self.stats.record_batch(
                f"{index_key.structure}:{kind}", len(probes), wr.steps,
                wr.primitives, time.monotonic() - started)
            for p, res in zip(probes, wr.values):
                _resolve(p.future, res)

        fut.add_done_callback(deliver)

    def _process_batch_failed(self, exc: BaseException, index_key: IndexKey,
                              kind: str, probes: List[Probe],
                              payloads: np.ndarray, started: float) -> None:
        """Failure path of a process batch: breaker, then brute or reject.

        Mirrors the thread job's except-clause: the failure feeds the
        fingerprint's breaker, and with ``brute_fallback`` an OPEN
        breaker re-serves the whole group as a degraded brute spec
        (the dataset ships to the worker if it must).
        """
        fingerprint = index_key.fingerprint
        self.breakers.record_failure(fingerprint)
        if self.config.brute_fallback \
                and self.breakers.state(fingerprint) == OPEN:
            spec = JobSpec(op="brute", kind=kind,
                           index=self._index_ref(index_key),
                           payloads=payloads)
            try:
                fut = self._submit_job_with_retry(spec)
            except RejectedError as rej:
                self.stats.record_rejected(rej.reason, len(probes))
                for p in probes:
                    _reject(p.future, RejectedError(str(rej),
                                                    reason=rej.reason))
                return

            def deliver(done: Future) -> None:
                brute_exc = done.exception()
                if brute_exc is not None:
                    self.stats.record_failed(len(probes))
                    for p in probes:
                        _reject(p.future, brute_exc)
                    return
                wr: WorkerResult = done.result()
                self.stats.record_fallback(len(probes))
                self.stats.record_batch(f"brute:{kind}", len(probes),
                                        wr.steps, wr.primitives,
                                        time.monotonic() - started)
                for p, res in zip(probes, wr.values):
                    _resolve(p.future, res)

            fut.add_done_callback(deliver)
            return
        self.stats.record_failed(len(probes))
        for p in probes:
            _reject(p.future, exc)

    # -- mutations -------------------------------------------------------

    def _root_lock(self, root: str) -> threading.Lock:
        with self._mutation_lock:
            lock = self._mutation_root_locks.get(root)
            if lock is None:
                lock = self._mutation_root_locks[root] = threading.Lock()
            return lock

    def _journal_for(self, cur) -> MutationJournal:
        """The chain's journal, created (with its base checkpoint) lazily.

        Caller holds the chain's root lock.  A pre-existing journal
        whose newest record the registry has never seen is *ahead* of
        this process -- appending would fork its history, so the append
        path refuses until :meth:`recover` has replayed it.
        """
        journal = self._journals.get(cur.root)
        if journal is None:
            journal = MutationJournal(
                os.path.join(self._journal_dir, cur.root),
                fsync=self.config.journal_fsync,
                segment_bytes=self.config.journal_segment_bytes,
                observer=self.stats.record_wal_event)
            try:
                last_fp = journal.last_fingerprint
                if last_fp is not None \
                        and self.registry.version_of(last_fp) < 0:
                    raise JournalError(
                        f"journal for {cur.root} holds unreplayed records "
                        f"(head {last_fp}); run recover() before mutating")
                if journal.read_checkpoint_meta() is None:
                    # base checkpoint: the chain head as of journal
                    # creation, so replay is anchored by the journal
                    # directory alone
                    lines, domain = self.registry.dataset_snapshot(
                        cur.fingerprint)
                    journal.write_checkpoint(
                        lines, fingerprint=cur.fingerprint,
                        version=cur.version, domain=domain, seq=0)
            except BaseException:
                journal.close()
                raise
            self._journals[cur.root] = journal
        return journal

    def _checkpoint_locked(self, root: str) -> Dict[str, object]:
        """Checkpoint a chain's head; caller holds the root lock.

        With a store attached the head's default index is persisted
        first -- a checkpoint only truncates WAL prefix once the index
        it depends on is safely on disk; a failed persist aborts the
        checkpoint and the journal keeps every record.
        """
        journal = self._journals.get(root)
        if journal is None:
            raise JournalError(f"no journal attached for chain {root!r}")
        head = self.registry.resolve(root)
        key = self._index_key(head.fingerprint, None)
        if self.store is not None and not self.store.contains(key):
            entry = self.registry.get(key.fingerprint, key.structure,
                                      **dict(key.params))
            self.store.put(key, entry.tree,
                           build_steps=entry.build_steps,
                           build_primitives=entry.build_primitives,
                           num_lines=entry.num_lines)
        lines, domain = self.registry.dataset_snapshot(head.fingerprint)
        return journal.write_checkpoint(
            lines, fingerprint=head.fingerprint, version=head.version,
            domain=domain, seq=journal.last_seq)

    def _run_mutation_batch(self, root: str, probes: List[Probe]) -> None:
        """Commit one coalesced mutation group as one new version.

        Stage (register the post-batch content), warm (build the
        default-structure index -- repairing from the parent's shards
        on the thread backend), then flip reads to the new version and
        let retention GC collect versions beyond the window.  A failed
        warm build abandons the staged version: the readable snapshot
        is untouched and the breakers are *not* fed -- a broken write
        must not trip readers onto the fail-fast path.
        """
        with self._root_lock(root):
            started = time.monotonic()
            try:
                cur = self.registry.resolve(root)
            except KeyError as exc:
                self.stats.record_failed(len(probes))
                for p in probes:
                    _reject(p.future, exc)
                return
            n = cur.num_lines
            live, del_parts, ins_parts = [], [], []
            for p in probes:
                op, payload = p.payload
                if op == "delete" and payload.size and (
                        payload.min() < 0 or payload.max() >= n):
                    self.stats.record_failed()
                    _reject(p.future, IndexError(
                        f"delete ids out of range for {n} lines "
                        f"(version {cur.version})"))
                    continue
                (del_parts if op == "delete" else ins_parts).append(payload)
                live.append(p)
            if not live:
                return
            del_ids = (np.unique(np.concatenate(del_parts)) if del_parts
                       else np.zeros(0, dtype=np.int64))
            ins = (np.concatenate(ins_parts) if ins_parts
                   else np.zeros((0, 4)))
            old = self.registry.dataset(cur.fingerprint)
            keep = np.ones(n, dtype=bool)
            keep[del_ids] = False
            new_lines = np.vstack([old[keep], ins])
            staged = self.registry.stage_version(
                root, new_lines, delete_ids=del_ids,
                n_inserted=ins.shape[0])
            if staged.fingerprint == cur.fingerprint:
                # no-op batch (empty, or it recreated the same content)
                result = MutationResult(
                    root=cur.root, fingerprint=cur.fingerprint,
                    version=cur.version, num_lines=cur.num_lines,
                    inserted=int(ins.shape[0]), deleted=int(del_ids.size))
                self._settle_mutations(live, result)
                return
            # write-ahead: the commit record must be durable *before*
            # the index warms and reads flip, so an acked batch always
            # replays after a crash.  A failed append aborts the whole
            # commit -- staged version abandoned, ack withheld, readable
            # snapshot untouched, breakers not fed (same contract as a
            # failed warm build).
            journal: Optional[MutationJournal] = None
            seq = 0
            if self._journal_dir is not None:
                try:
                    if self.faults is not None:
                        self.faults.fire("wal.append", root=cur.root)
                    journal = self._journal_for(cur)
                    seq = journal.append(
                        base=cur.fingerprint,
                        fingerprint=staged.fingerprint,
                        version=staged.version,
                        num_lines=staged.num_lines,
                        domain=self.registry.domain(staged.fingerprint),
                        delete_ids=del_ids, insert_lines=ins)
                except Exception as exc:  # noqa: BLE001 - any failed append
                    self.registry.abandon_version(staged.fingerprint)
                    self.stats.record_wal_event("wal_append_failure")
                    self.stats.record_failed(len(live))
                    self.stats.record_mutation(len(live), int(del_ids.size),
                                               int(ins.shape[0]), failed=True)
                    for p in live:
                        _reject(p.future, exc)
                    return
            key = self._index_key(staged.fingerprint, None)
            try:
                entry = self.registry.get(key.fingerprint, key.structure,
                                          **dict(key.params))
                if self._is_process:
                    # worker visibility comes BEFORE the flip: the new
                    # version's payload lands in the store and/or the
                    # arena first, so the first post-flip worker batch
                    # adopts the parent's build -- including an
                    # incrementally *repaired* decomposition, whose
                    # cuts a canonical worker rebuild would not match
                    entry = self._share_commit(key, entry)
            except Exception as exc:  # noqa: BLE001 - any failed warm build
                if journal is not None:
                    journal.abandon_last(seq)
                self.registry.abandon_version(staged.fingerprint)
                self.stats.record_failed(len(live))
                self.stats.record_mutation(len(live), int(del_ids.size),
                                           int(ins.shape[0]), failed=True)
                for p in live:
                    _reject(p.future, exc)
                return
            info = self.registry.activate_version(staged.fingerprint)
            repaired = bool(entry.repair
                            and not entry.repair.get("full_rebuild"))
            self.stats.record_mutation(len(live), int(del_ids.size),
                                       int(ins.shape[0]), repaired=repaired)
            self.stats.record_batch(f"{key.structure}:mutate", len(live),
                                    entry.build_steps,
                                    entry.build_primitives,
                                    time.monotonic() - started)
            result = MutationResult(
                root=info.root, fingerprint=info.fingerprint,
                version=info.version, num_lines=info.num_lines,
                inserted=int(ins.shape[0]), deleted=int(del_ids.size),
                repair=entry.repair)
            if journal is not None and self.config.checkpoint_every:
                count = self._ckpt_counts.get(info.root, 0) + 1
                if count >= self.config.checkpoint_every:
                    count = 0
                    try:
                        self._checkpoint_locked(info.root)
                    except Exception:  # noqa: BLE001 - checkpoint is advisory
                        # the WAL keeps every record the checkpoint
                        # would have truncated, so durability holds
                        self.stats.record_wal_event("checkpoint_failure")
                self._ckpt_counts[info.root] = count
            self._settle_mutations(live, result)

    @staticmethod
    def _settle_mutations(probes: List[Probe],
                          result: MutationResult) -> None:
        for p in probes:
            p.future.version = result.version
            _resolve(p.future, result)

    # -- joins -----------------------------------------------------------

    def _dispatch_join(self, structure: str, probes: List[Probe]) -> None:
        """Flush one coalesced join group as a single executor job."""
        started = min(p.submitted_at for p in probes)
        name = f"{structure}:join"
        if self._is_process:
            live: List[Probe] = []
            pairs: List[Tuple[IndexRef, IndexRef]] = []
            for p in probes:
                fp_a, fp_b = p.payload
                try:
                    pairs.append(
                        (self._index_ref(self._index_key(fp_a, structure)),
                         self._index_ref(self._index_key(fp_b, structure))))
                except KeyError as exc:   # unknown fingerprint
                    self.stats.record_failed()
                    _reject(p.future, exc)
                    continue
                live.append(p)
            if live:
                self._deliver_join_spec(JobSpec(op="join",
                                                pairs=tuple(pairs)),
                                        live, started, name)
            return

        keys = [(self._index_key(a, structure), self._index_key(b, structure))
                for a, b in (p.payload for p in probes)]

        def job(machine):
            out = []
            for key_a, key_b in keys:
                try:
                    ta = self.registry.get(key_a.fingerprint,
                                           key_a.structure,
                                           **dict(key_a.params)).tree
                    tb = self.registry.get(key_b.fingerprint,
                                           key_b.structure,
                                           **dict(key_b.params)).tree
                    if isinstance(ta, ShardedIndex) \
                            or isinstance(tb, ShardedIndex):
                        res = sharded_join(ta, tb)
                    else:
                        join = (rtree_join if _FAMILY[structure] == "rtree"
                                else quadtree_join)
                        res = join(ta, tb)
                except Exception as exc:  # noqa: BLE001 - per-pair outcome
                    out.append(("err", exc))
                else:
                    out.append(("ok", res))
            self.stats.record_batch(name, len(out), machine.steps,
                                    machine.total_primitives,
                                    time.monotonic() - started)
            return out

        try:
            fut = self._submit_job_with_retry(job)
        except RejectedError as exc:
            self.stats.record_rejected(exc.reason, len(probes))
            for p in probes:
                _reject(p.future, RejectedError(str(exc), reason=exc.reason))
            return

        def deliver(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                self._fail_join_group(exc, probes)
                return
            self._settle_join_outcomes(done.result(), probes)

        fut.add_done_callback(deliver)

    def _deliver_join_spec(self, spec: JobSpec, probes: List[Probe],
                           started: float, name: str,
                           brute: bool = False) -> Future:
        """Submit a join :class:`JobSpec` and wire per-pair delivery."""
        try:
            fut = self._submit_job_with_retry(spec)
        except RejectedError as exc:
            self.stats.record_rejected(exc.reason, len(probes))
            for p in probes:
                _reject(p.future, RejectedError(str(exc), reason=exc.reason))
            return probes[0].future

        def deliver(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                self._fail_join_group(exc, probes, brute=brute)
                return
            wr: WorkerResult = done.result()
            self.stats.record_batch("brute:join" if brute else name,
                                    len(probes), wr.steps, wr.primitives,
                                    time.monotonic() - started)
            if brute:
                self.stats.record_fallback(len(probes))
            self._settle_join_outcomes(wr.values, probes, brute=brute)

        fut.add_done_callback(deliver)
        return probes[0].future

    def _fail_join_group(self, exc: BaseException, probes: List[Probe],
                         brute: bool = False) -> None:
        if not (brute or isinstance(exc, RejectedError)):
            # a whole-job failure (crash retries exhausted, injected
            # fault) counts against every pair's fingerprints
            for p in probes:
                for fp in p.payload:
                    self.breakers.record_failure(fp)
        self.stats.record_failed(len(probes))
        for p in probes:
            _reject(p.future, exc)

    def _settle_join_outcomes(self, outcomes, probes: List[Probe],
                              brute: bool = False) -> None:
        for p, (status, val) in zip(probes, outcomes):
            if status == "ok":
                if not brute:
                    for fp in p.payload:
                        self.breakers.record_success(fp)
                _resolve(p.future, val)
            else:
                if not brute:
                    for fp in p.payload:
                        self.breakers.record_failure(fp)
                self.stats.record_failed()
                _reject(p.future, val)

    def _dispatch_sharded(self, index_key: IndexKey, kind: str, exact: bool,
                          probes: List[Probe]) -> None:
        """Fan one group out as per-shard sub-batches and merge per probe.

        The shard plan (which probes touch which shards, by MBR
        culling) is computed on the dispatching thread; each probed
        shard becomes one executor job so shards run concurrently, and
        a shared merge state resolves every probe future once its last
        shard reports.  Nearest probes run in two rounds: round one
        queries only each probe's closest shard (by MBR lower bound),
        round two fans out to just the shards whose lower bound beats
        the round-one distance -- the batched analogue of the scalar
        best-so-far pruning.  ``warm()`` prebuilds the sharded index so
        the first dispatch does not pay the build on this thread.

        The group inherits the **earliest deadline** of its probes;
        when it expires with shards unreported the merge resolves every
        probe with a :class:`PartialResult` over the shards that did
        report (``shards_dropped`` counts the rest) instead of raising.
        """
        started = min(p.submitted_at for p in probes)
        name = f"{index_key.structure}:{kind}"
        fingerprint = index_key.fingerprint
        try:
            entry = self.registry.get(index_key.fingerprint,
                                      index_key.structure,
                                      **dict(index_key.params))
        except Exception as exc:  # unknown structure, build failure, ...
            self.breakers.record_failure(fingerprint)
            if self.config.brute_fallback \
                    and self.breakers.state(fingerprint) == OPEN:
                self._dispatch_brute_group(kind, fingerprint, probes, started)
                return
            self.stats.record_failed(len(probes))
            for p in probes:
                _reject(p.future, exc)
            return
        sharded: ShardedIndex = entry.tree
        payloads = np.stack([p.payload for p in probes])

        if sharded.num_shards == 0:
            # empty dataset: empty id sets, or the scalar nearest error
            if kind == "nearest":
                self.stats.record_failed(len(probes))
                for p in probes:
                    _reject(p.future,
                            ValueError("empty tree has no nearest line"))
            else:
                self.stats.record_shard_batch(0, 0)
                for p in probes:
                    _resolve(p.future, np.zeros(0, dtype=np.int64))
                self.stats.record_batch(name, len(probes), 0.0, 0,
                                        time.monotonic() - started)
            return

        deadlines = [p.deadline_at for p in probes if p.deadline_at is not None]
        merge = _ShardedMerge(self, sharded, kind, exact, probes, payloads,
                              started, name, fingerprint,
                              deadline=min(deadlines) if deadlines else None,
                              index_ref=(self._index_ref(index_key)
                                         if self._is_process else None),
                              version=self.registry.version_of(fingerprint))
        if kind == "nearest":
            merge.start_nearest()
        else:
            mask = (sharded.plan_windows(payloads) if kind == "window"
                    else sharded.plan_points(payloads))
            merge.start_ids(mask)

    def _dispatch_brute_group(self, kind: str, fingerprint: str,
                              probes: List[Probe], started: float) -> None:
        """Serve a whole coalesced group brute-force (breaker open)."""
        def job(machine):
            lines = self.registry.dataset(fingerprint)
            payloads = np.stack([p.payload for p in probes])
            results = self._brute_batch(kind, lines, payloads)
            self.stats.record_fallback(len(probes))
            self.stats.record_batch(f"brute:{kind}", len(probes),
                                    machine.steps, machine.total_primitives,
                                    time.monotonic() - started)
            return results

        try:
            fut = self._submit_job_with_retry(job)
        except RejectedError as exc:
            self.stats.record_rejected(exc.reason, len(probes))
            for p in probes:
                _reject(p.future, RejectedError(str(exc), reason=exc.reason))
            return

        def deliver(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                self.stats.record_failed(len(probes))
                for p in probes:
                    _reject(p.future, exc)
                return
            for p, res in zip(probes, done.result()):
                _resolve(p.future, res)

        fut.add_done_callback(deliver)


class _ShardedMerge:
    """Merge state for one sharded fan-out batch.

    Per-shard sub-batches run as independent executor jobs; the last
    job of a round (tracked by a ``remaining`` counter under ``lock``)
    triggers the round-end hook from its completion callback, so no
    thread ever blocks waiting on shard results.  Every probe future is
    resolved exactly once -- by ``_complete`` on success or deadline
    expiry (first writer wins via the ``done`` flag) or by the first
    ``_fail`` on any shard error or executor rejection.

    With a ``deadline`` (absolute monotonic seconds) a daemon timer
    fires ``_complete(partial=True)``: probes resolve to
    :class:`PartialResult` wrapping the merge of the shards that
    reported in time, and late shard deliveries are dropped.
    """

    def __init__(self, engine: SpatialQueryEngine, sharded: ShardedIndex,
                 kind: str, exact: bool, probes: List[Probe],
                 payloads: np.ndarray, started: float, name: str,
                 fingerprint: str,
                 deadline: Optional[float] = None,
                 index_ref: Optional[IndexRef] = None,
                 version: int = -1) -> None:
        self.engine = engine
        self.sharded = sharded
        self.index_ref = index_ref    # set iff the backend is a process pool
        self.kind = kind
        self.exact = exact
        self.probes = probes
        self.payloads = payloads
        self.started = started
        self.name = name
        self.fingerprint = fingerprint
        self.version = version
        self.lock = threading.Lock()
        self.failed = False
        self.done = False
        self.remaining = 0
        self.completed_jobs = 0
        self.steps = 0.0
        self.primitives = 0
        # per-shard (probe selection, global ids, per-probe counts)
        self.chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self.probed: set = set()        # distinct shards touched, all rounds
        self.on_round_end = self._finalize
        self.timer: Optional[threading.Timer] = None
        if deadline is not None:
            self.timer = threading.Timer(max(deadline - time.monotonic(), 0.0),
                                         self._on_deadline)
            self.timer.daemon = True
            self.timer.start()

    # -- rounds ----------------------------------------------------------

    def start_ids(self, mask: np.ndarray) -> None:
        """Window/point: one round over the MBR-culled shard mask."""
        jobs = [(k, np.flatnonzero(mask[k]))
                for k in range(self.sharded.num_shards) if mask[k].any()]
        self.probed.update(k for k, _ in jobs)
        self.engine.stats.record_shard_batch(self.sharded.num_shards,
                                             len(jobs))
        if not jobs:
            self._finalize()
            return
        self._submit(jobs)

    def start_nearest(self) -> None:
        """Nearest round one: every zero-lower-bound shard per probe.

        A probe goes to each shard whose MBR contains it (lower bound
        zero -- those shards can never be pruned) plus its argmin-bound
        shard as a fallback when no MBR contains the point.  Folding
        the contained shards into round one keeps the second round down
        to the rare probes whose best hit lies across a shard boundary.
        """
        self.lb = self.sharded.nearest_bounds(self.payloads)   # (K, B)
        B = len(self.probes)
        self.best_d = np.full(B, np.inf)
        self.best_g = np.full(B, -1, dtype=np.int64)
        self.round1 = self.lb == 0.0
        self.round1[np.argmin(self.lb, axis=0), np.arange(B)] = True
        jobs = [(k, np.flatnonzero(self.round1[k]))
                for k in range(self.sharded.num_shards)
                if self.round1[k].any()]
        self.probed.update(k for k, _ in jobs)
        self.on_round_end = self._start_phase2
        self._submit(jobs)

    def _start_phase2(self) -> None:
        """Nearest round two: shards whose bound beats the round-one hit.

        Runs in the completion callback of the last round-one job.  The
        comparison is inclusive (``lb <= best``) because an equidistant
        segment with a lower global id may live in another shard and
        must win the tie.
        """
        mask = (self.lb <= self.best_d[None, :]) & ~self.round1
        jobs = [(k, np.flatnonzero(mask[k]))
                for k in range(self.sharded.num_shards) if mask[k].any()]
        self.probed.update(k for k, _ in jobs)
        self.engine.stats.record_shard_batch(self.sharded.num_shards,
                                             len(self.probed))
        if not jobs:
            self._finalize()
            return
        self.on_round_end = self._finalize
        self._submit(jobs)

    # -- plumbing --------------------------------------------------------

    def _submit(self, jobs: List[Tuple[int, np.ndarray]]) -> None:
        with self.lock:
            self.remaining += len(jobs)   # count before any job can finish
        for k, sel in jobs:
            if self.index_ref is not None:
                work = JobSpec(op="shard", kind=self.kind,
                               index=self.index_ref,
                               payloads=self.payloads[sel],
                               exact=self.exact, shard=k,
                               version=self.version)
            else:
                work = self._make_job(k, sel)
            t0 = time.monotonic()
            try:
                fut = self.engine._submit_job_with_retry(work)
            except RejectedError as exc:
                self.engine.stats.record_rejected(exc.reason,
                                                  len(self.probes))
                self._fail(RejectedError(str(exc), reason=exc.reason))
                return
            # the probe selection rides in the callback, not the result,
            # so both backends deliver through the same path; the shard
            # id and submit time feed the per-shard service EWMAs the
            # balance watchdog reads
            fut.add_done_callback(
                lambda done, s=sel, k=k, t0=t0: self._deliver(done, s, k, t0))

    def _make_job(self, k: int, sel: np.ndarray):
        def job(machine):
            if self.engine.faults is not None:
                self.engine.faults.fire("shard.query", shard=k,
                                        kind=self.kind)
            results = self.sharded.query_shard_batch(
                k, self.kind, self.payloads[sel], exact=self.exact,
                machine=machine, flat=self.kind != "nearest")
            return results, machine.steps, machine.total_primitives
        return job

    def _deliver(self, done: Future, sel: np.ndarray,
                 shard: Optional[int] = None,
                 submitted: Optional[float] = None) -> None:
        exc = done.exception()
        if exc is not None:
            self._fail(exc)
            return
        if shard is not None and submitted is not None:
            # queue + kernel time, what a probe actually waits on
            self.engine.stats.record_shard_service(
                self.fingerprint, shard, time.monotonic() - submitted)
        res = done.result()
        if isinstance(res, WorkerResult):
            results, steps, primitives = res.values, res.steps, res.primitives
        else:
            results, steps, primitives = res
        with self.lock:
            if self.failed or self.done:
                return   # the batch already failed or went partial
            if self.kind == "nearest":
                # fold the shard's (ids, distances) into the running
                # best, breaking distance ties toward the lower id
                gids, dists = results
                cur_d = self.best_d[sel]
                cur_g = self.best_g[sel]
                upd = (dists < cur_d) | ((dists == cur_d) & (gids < cur_g))
                self.best_d[sel] = np.where(upd, dists, cur_d)
                self.best_g[sel] = np.where(upd, gids, cur_g)
            else:
                gids, counts = results
                self.chunks.append((sel, gids, counts))
            self.steps += steps
            self.primitives += primitives
            self.completed_jobs += 1
            self.remaining -= 1
            last = self.remaining == 0
        if last:
            self.on_round_end()

    def _fail(self, exc: BaseException) -> None:
        with self.lock:
            if self.failed or self.done:
                return
            self.failed = True
        if self.timer is not None:
            self.timer.cancel()
        if not isinstance(exc, RejectedError):
            # backpressure is not an index fault: only real shard-query
            # failures feed the fingerprint's breaker
            self.engine.breakers.record_failure(self.fingerprint)
        self.engine.stats.record_failed(len(self.probes))
        for p in self.probes:
            _reject(p.future, exc)

    def _on_deadline(self) -> None:
        self._complete(partial=True)

    def _finalize(self) -> None:
        self._complete(partial=False)

    def _merged_values(self) -> List[object]:
        """Per-probe answers from the chunks delivered so far.

        For nearest, the running best per probe.  For window/point the
        chunk merge avoids sorting the hit stream: each chunk lists its
        probes in ascending order with per-probe hit runs already
        sorted, so every run can be scattered straight to its probe's
        write cursor.  Only probes fed by two or more shards need a
        final per-probe sort to interleave the runs -- shards partition
        the segments, so it is never a dedup.
        """
        if self.kind == "nearest":
            return [(int(g), float(d))
                    for g, d in zip(self.best_g, self.best_d)]
        B = len(self.probes)
        if not self.chunks:
            empty = np.zeros(0, dtype=np.int64)
            return [empty] * B
        counts_pp = np.zeros(B, dtype=np.int64)
        nshards = np.zeros(B, dtype=np.int64)
        for sel, _, counts in self.chunks:
            counts_pp[sel] += counts
            nshards[sel] += counts > 0
        offsets = np.zeros(B + 1, dtype=np.int64)
        np.cumsum(counts_pp, out=offsets[1:])
        out = np.empty(offsets[-1], dtype=np.int64)
        cursor = offsets[:-1].copy()
        for sel, vals, counts in self.chunks:
            run0 = np.concatenate(([0], np.cumsum(counts[:-1])))
            pos = (np.repeat(cursor[sel] - run0, counts)
                   + np.arange(vals.size))
            out[pos] = vals
            cursor[sel] += counts
        pieces = np.split(out, offsets[1:-1])
        for i in np.flatnonzero(nshards > 1).tolist():
            pieces[i].sort()   # views into ``out``: sorts in place
        return pieces

    def _complete(self, partial: bool) -> None:
        with self.lock:
            if self.failed or self.done:
                return
            self.done = True
            dropped = self.remaining if partial else 0
            completed = self.completed_jobs
            if partial and dropped == 0 and completed == 0:
                # the deadline beat the fan-out itself: no job was even
                # dispatched, so every shard's contribution was dropped
                dropped = self.sharded.num_shards
        if self.timer is not None:
            self.timer.cancel()
        values = self._merged_values()
        if partial:
            self.engine.stats.record_partial(len(self.probes), dropped)
            for p, val in zip(self.probes, values):
                _resolve(p.future,
                         PartialResult(val, shards_dropped=dropped,
                                       shards_completed=completed))
        else:
            self.engine.breakers.record_success(self.fingerprint)
            for p, val in zip(self.probes, values):
                _resolve(p.future, val)
        self.engine.stats.record_batch(self.name, len(self.probes),
                                       self.steps, self.primitives,
                                       time.monotonic() - self.started)
