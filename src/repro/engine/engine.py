"""The concurrent batched spatial query engine.

:class:`SpatialQueryEngine` composes the serving stack:

* an :class:`~repro.engine.registry.IndexRegistry` building PM1 /
  bucket-PMR / R-tree indexes on demand, keyed by dataset fingerprint,
  with LRU eviction and invalidation hooks for dynamic updates;
* a :class:`~repro.engine.coalescer.Coalescer` that batches individual
  window / point / nearest probes per (index, kind) within a count or
  deadline window;
* a :class:`~repro.engine.executor.BoundedExecutor` dispatching each
  batch as **one** vectorized ``structures.batch`` frontier pass over
  the shared read-only index, with backpressure when saturated;
* an :class:`~repro.engine.stats.EngineStats` layer aggregating batch
  sizes, queue depth, cache hit rate, latency percentiles, and the
  scan-model step accounting per batch.

Results are bit-identical to looping the scalar queries (a test
invariant): batching changes the schedule, never the answer.

Example::

    from repro.engine import SpatialQueryEngine

    with SpatialQueryEngine(workers=4, max_batch=256) as eng:
        fp = eng.register(lines, domain=4096)
        hits = eng.window(fp, [100, 100, 400, 300])
        line, dist = eng.nearest(fp, (250.0, 250.0), structure="rtree")
"""

from __future__ import annotations

import time
from concurrent.futures import Future, TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..structures.batch import (
    batch_nearest_quadtree,
    batch_nearest_rtree,
    batch_point_query_quadtree,
    batch_point_query_rtree,
    batch_window_query_quadtree,
    batch_window_query_rtree,
)
from ..structures.join import quadtree_join, rtree_join
from .coalescer import Coalescer, Probe
from .executor import BoundedExecutor, RejectedError
from .registry import IndexKey, IndexRegistry
from .stats import EngineStats

__all__ = ["EngineConfig", "SpatialQueryEngine"]

#: structure name -> tree family used to pick the batch kernels
_FAMILY = {"pmr": "quadtree", "pm1": "quadtree", "rtree": "rtree"}

KINDS = ("window", "point", "nearest")


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the serving stack (see class docstrings for roles)."""

    structure: str = "pmr"        # default index family for probes
    capacity: int = 8             # bucket capacity / R-tree M
    min_fill: int = 2             # R-tree m
    max_batch: int = 64           # coalescing count trigger
    max_wait: float = 0.002       # coalescing deadline trigger (seconds)
    workers: int = 4              # executor threads
    queue_depth: int = 64         # bounded executor queue
    cache_capacity: int = 8       # LRU-cached built indexes
    default_timeout: Optional[float] = 30.0  # sync helper timeout (seconds)

    def __post_init__(self) -> None:
        if self.structure not in _FAMILY:
            raise ValueError(f"unknown structure {self.structure!r}")


class SpatialQueryEngine:
    """Concurrent batched query serving over the paper's structures."""

    def __init__(self, config: Optional[EngineConfig] = None, **overrides):
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config or keyword overrides")
        self.config = config
        self.registry = IndexRegistry(capacity=config.cache_capacity)
        self.stats = EngineStats()
        self._executor = BoundedExecutor(workers=config.workers,
                                         queue_depth=config.queue_depth)
        self._coalescer = Coalescer(self._dispatch,
                                    max_batch=config.max_batch,
                                    max_wait=config.max_wait)
        self._closed = False

    # -- datasets --------------------------------------------------------

    def register(self, lines: np.ndarray, domain: Optional[int] = None) -> str:
        """Register a segment map; returns the fingerprint probes use."""
        return self.registry.register(lines, domain=domain)

    def insert_lines(self, fingerprint: str, new_lines) -> str:
        """Dynamic insert: new fingerprint, stale indexes invalidated."""
        return self.registry.insert_lines(fingerprint, new_lines)

    def delete_lines(self, fingerprint: str, ids) -> str:
        """Dynamic delete: new fingerprint, stale indexes invalidated."""
        return self.registry.delete_lines(fingerprint, ids)

    def warm(self, fingerprint: str, structure: Optional[str] = None) -> None:
        """Build (or touch) the index ahead of traffic."""
        key = self._index_key(fingerprint, structure)
        self.registry.get(key.fingerprint, key.structure, **dict(key.params))

    # -- asynchronous probes ---------------------------------------------

    def submit_window(self, fingerprint: str, rect,
                      structure: Optional[str] = None,
                      exact: bool = True) -> Future:
        rect = np.asarray(rect, dtype=float).reshape(4)
        return self._submit("window", fingerprint, rect, structure, exact)

    def submit_point(self, fingerprint: str, point,
                     structure: Optional[str] = None,
                     exact: bool = True) -> Future:
        pt = np.asarray(point, dtype=float).reshape(2)
        structure = structure or self.config.structure
        if _FAMILY[structure] == "quadtree":
            dom = self.registry.domain(fingerprint)
            if not (0 <= pt[0] <= dom and 0 <= pt[1] <= dom):
                # mirror the scalar query's error without failing the batch
                fut: Future = Future()
                fut.set_exception(
                    ValueError(f"point {tuple(pt)} outside the domain"))
                self.stats.record_submitted("point")
                self.stats.record_failed()
                return fut
        return self._submit("point", fingerprint, pt, structure, exact)

    def submit_nearest(self, fingerprint: str, point,
                       structure: Optional[str] = None) -> Future:
        pt = np.asarray(point, dtype=float).reshape(2)
        return self._submit("nearest", fingerprint, pt, structure, True)

    def submit_join(self, fingerprint_a: str, fingerprint_b: str,
                    structure: Optional[str] = None) -> Future:
        """Spatial join of two registered maps (dispatched unbatched)."""
        structure = structure or self.config.structure
        key_a = self._index_key(fingerprint_a, structure)
        key_b = self._index_key(fingerprint_b, structure)
        self.stats.record_submitted("join")

        def job(machine):
            start = time.monotonic()
            ta = self.registry.get(key_a.fingerprint, key_a.structure,
                                   **dict(key_a.params)).tree
            tb = self.registry.get(key_b.fingerprint, key_b.structure,
                                   **dict(key_b.params)).tree
            join = rtree_join if _FAMILY[structure] == "rtree" else quadtree_join
            pairs = join(ta, tb)
            self.stats.record_batch(f"{structure}:join", 1, machine.steps,
                                    machine.total_primitives,
                                    time.monotonic() - start)
            return pairs

        try:
            return self._executor.submit(job)
        except RejectedError as exc:
            self.stats.record_rejected(exc.reason)
            fut: Future = Future()
            fut.set_exception(exc)
            return fut

    # -- synchronous helpers ---------------------------------------------

    def window(self, fingerprint: str, rect, structure: Optional[str] = None,
               exact: bool = True, timeout: Optional[float] = None) -> np.ndarray:
        """Blocking window query; raises TimeoutError past ``timeout``."""
        return self._await(self.submit_window(fingerprint, rect, structure,
                                              exact), timeout)

    def point(self, fingerprint: str, point, structure: Optional[str] = None,
              exact: bool = True, timeout: Optional[float] = None) -> np.ndarray:
        """Blocking point query."""
        return self._await(self.submit_point(fingerprint, point, structure,
                                             exact), timeout)

    def nearest(self, fingerprint: str, point,
                structure: Optional[str] = None,
                timeout: Optional[float] = None) -> Tuple[int, float]:
        """Blocking nearest-line query; returns ``(line id, distance)``."""
        return self._await(self.submit_nearest(fingerprint, point, structure),
                           timeout)

    def join(self, fingerprint_a: str, fingerprint_b: str,
             structure: Optional[str] = None,
             timeout: Optional[float] = None) -> np.ndarray:
        """Blocking spatial join of two registered maps."""
        return self._await(self.submit_join(fingerprint_a, fingerprint_b,
                                            structure), timeout)

    # -- lifecycle / introspection ---------------------------------------

    def flush(self) -> None:
        """Dispatch all pending probes now (deterministic batching in tests)."""
        self._coalescer.flush()

    def snapshot(self) -> Dict[str, object]:
        """Engine counters + cache stats + current queue/pending gauges."""
        out = self.stats.snapshot()
        out["cache"] = self.registry.snapshot()
        out["queue_depth"] = self._executor.queue_depth
        out["pending_probes"] = self._coalescer.pending
        return out

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._coalescer.close()
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "SpatialQueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -------------------------------------------------------

    def _index_key(self, fingerprint: str, structure: Optional[str]) -> IndexKey:
        structure = structure or self.config.structure
        if structure not in _FAMILY:
            raise ValueError(f"unknown structure {structure!r}")
        if structure == "rtree":
            params = {"min_fill": self.config.min_fill,
                      "capacity": self.config.capacity}
        elif structure == "pmr":
            params = {"capacity": self.config.capacity}
        else:
            params = {}
        return IndexKey.make(fingerprint, structure, **params)

    def _submit(self, kind: str, fingerprint: str, payload: np.ndarray,
                structure: Optional[str], exact: bool) -> Future:
        if fingerprint not in self.registry._datasets:
            raise KeyError(f"unknown dataset fingerprint {fingerprint!r}")
        key = (self._index_key(fingerprint, structure), kind, bool(exact))
        probe = Probe(payload)
        self.stats.record_submitted(kind)
        try:
            self._coalescer.submit(key, probe)
        except RejectedError as exc:
            self.stats.record_rejected(exc.reason)
            probe.future.set_exception(exc)
        return probe.future

    def _await(self, future: Future, timeout: Optional[float]):
        timeout = self.config.default_timeout if timeout is None else timeout
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            self.stats.record_timeout()
            raise

    def _batch_fn(self, structure: str, kind: str, exact: bool):
        family = _FAMILY[structure]
        if kind == "window":
            if family == "quadtree":
                return lambda tree, v, m: batch_window_query_quadtree(
                    tree, v, exact=exact, machine=m)
            return lambda tree, v, m: batch_window_query_rtree(
                tree, v, exact=exact, machine=m)
        if kind == "point":
            if family == "quadtree":
                # out-of-domain points were rejected at submit time
                return lambda tree, v, m: batch_point_query_quadtree(
                    tree, v, strict=False, machine=m)
            return lambda tree, v, m: batch_point_query_rtree(
                tree, v, exact=exact, machine=m)
        if family == "quadtree":
            return lambda tree, v, m: batch_nearest_quadtree(tree, v, machine=m)
        return lambda tree, v, m: batch_nearest_rtree(tree, v, machine=m)

    def _dispatch(self, group_key, probes: List[Probe]) -> None:
        """Flush callback: run one group as a single vectorized pass."""
        index_key, kind, exact = group_key
        batch_fn = self._batch_fn(index_key.structure, kind, exact)
        started = min(p.submitted_at for p in probes)

        def job(machine):
            entry = self.registry.get(index_key.fingerprint,
                                      index_key.structure,
                                      **dict(index_key.params))
            payloads = np.stack([p.payload for p in probes])
            results = batch_fn(entry.tree, payloads, machine)
            self.stats.record_batch(
                f"{index_key.structure}:{kind}", len(probes), machine.steps,
                machine.total_primitives, time.monotonic() - started)
            return results

        try:
            fut = self._executor.submit(job)
        except RejectedError as exc:
            self.stats.record_rejected(exc.reason, len(probes))
            for p in probes:
                p.future.set_exception(RejectedError(exc.reason))
            return

        def deliver(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                self.stats.record_failed(len(probes))
                for p in probes:
                    p.future.set_exception(exc)
                return
            results = done.result()
            for p, res in zip(probes, results):
                p.future.set_result(res)

        fut.add_done_callback(deliver)
