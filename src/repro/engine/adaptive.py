"""Adaptive serving: the engine measures itself and tunes its own knobs.

The paper's thesis is that data-parallel spatial performance comes from
choosing the *shape* of the work to fit the data -- batch widths sized
to amortise per-round overhead, space-sort partitions cut to the data's
distribution.  The serving stack exposed those shapes as static config
(``max_batch``/``max_wait``/``shards``/``ordering``); this module turns
them into measured, feedback-controlled choices.  Three controllers,
one tick loop:

* :class:`CoalescerTuner` -- an AIMD loop over the engine's
  :class:`~repro.engine.stats.LatencyReservoir` drives the coalescer
  triggers toward a target p95.  Additive increase while under target
  (grow ``max_batch`` to amortise per-batch overhead -- doubled growth
  under the process backend, where ``ipc_bytes_sent / ipc_jobs`` prices
  every dispatch), multiplicative decrease when over it (halve
  ``max_wait`` when the deadline window dominates the latency, halve
  ``max_batch`` under bursty thread-backend load where giant batches
  head-of-line block).  ``max_wait`` is clamped so exact ``0``
  (immediate flush) stays reachable, and recoverable: once load fills
  batches again the additive side grows the window back.

* :class:`SkewWatch` -- per-dataset shard balance (segment counts from
  the live decomposition, per-shard service-time EWMAs from
  :class:`~repro.engine.stats.EngineStats`).  Skew past the threshold
  for ``patience`` consecutive ticks triggers an online re-shard
  through the engine's MVCC commit machinery: the rebalanced
  decomposition is built off the read path under a fresh index key
  (stage -> warm build -> flip), so readers never block and in-flight
  batches finish against the decomposition they resolved.

* :func:`probe_shard_params` -- K/ordering for a *new* dataset from a
  cheap measured probe instead of a blind default: sample the segments,
  sort their curve keys per ordering (the same sample-sort cut
  ``build_sharded`` uses), and score each candidate cut by how tightly
  its ranges pack (summed per-range midpoint bbox area -- tight ranges
  mean tight shard MBRs mean more fan-out culling).

Correctness is free by construction: the differential harness proves
any (K, ordering) decomposition answers bit-identically, so every
controller decision changes the *speed* of an answer, never its value.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..structures.sharded import ORDERINGS, shard_keys

__all__ = ["CoalescerTuner", "SkewWatch", "AdaptiveController",
           "probe_shard_params"]


# -- K / ordering probe ----------------------------------------------------

def probe_shard_params(lines: np.ndarray, domain: float,
                       target_per_shard: int = 8192,
                       max_shards: int = 32,
                       sample: int = 4096,
                       seed: int = 0x51AB) -> Dict[str, object]:
    """Measured (K, ordering) for a dataset, from a sample-sorted probe.

    K targets ``target_per_shard`` segments per shard (nearest power of
    two, clamped to ``[2, max_shards]``); datasets under two shards'
    worth stay unsharded.  The target is deliberately coarse: each
    probed shard is one executor dispatch, and measured against this
    engine's thread pool the per-dispatch overhead beats the per-shard
    scan savings until shards carry thousands of segments -- small
    datasets are served best unsharded or barely sharded, and a traffic
    hotspot that later concentrates load can always refine the cut
    through the online re-shard path.

    The ordering is chosen by measurement, not default: up to
    ``sample`` segments are drawn deterministically, their curve keys
    computed per ordering and cut into K equal-count ranges exactly as
    :func:`~repro.structures.sharded.build_sharded` would cut them, and
    each ordering is scored by the summed area of its ranges' midpoint
    bounding boxes (normalised by the domain).  Lower is better: tight
    ranges become tight shard MBRs, and tight MBRs are what lets the
    fan-out planner cull shards.  Ties keep morton (the cheaper encode).
    """
    lines = np.asarray(lines, dtype=np.float64).reshape(-1, 4)
    n = lines.shape[0]
    if n < 2 * target_per_shard:
        return {"shards": 1, "ordering": ORDERINGS[0],
                "scores": {}, "sampled": 0}
    K = 1 << int(round(np.log2(n / float(target_per_shard))))
    K = int(min(max(K, 2), max_shards))
    m = min(int(sample), n)
    if m < n:
        rng = np.random.default_rng(seed)
        idx = np.sort(rng.choice(n, m, replace=False))
        sub = lines[idx]
    else:
        sub = lines
    mids = 0.5 * (sub[:, 0:2] + sub[:, 2:4])
    scores: Dict[str, float] = {}
    for ordering in ORDERINGS:
        keys = shard_keys(sub, domain, ordering)
        order = np.argsort(keys, kind="stable")
        cuts = [(i * m) // K for i in range(K + 1)]
        area = 0.0
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            if hi <= lo:
                continue
            pts = mids[order[lo:hi]]
            ext = pts.max(axis=0) - pts.min(axis=0)
            area += float(ext[0] * ext[1])
        scores[ordering] = area / (float(domain) ** 2)
    best = min(ORDERINGS, key=lambda o: scores[o])
    return {"shards": K, "ordering": best, "scores": scores,
            "sampled": int(m)}


# -- coalescer tuner -------------------------------------------------------

class CoalescerTuner:
    """AIMD loop driving the coalescer triggers toward a target p95.

    One :meth:`tick` per control interval; a tick without at least
    ``min_samples`` fresh latency samples is a hold (no signal, no
    move -- an idle engine must not drift).  Overshoot is split into
    two regimes first: **window-dominated** (p95 within a small factor
    of ``max_wait`` and the target -- the coalescing deadline itself is
    the latency) and **backlogged** (p95 far above both -- queueing:
    per-dispatch overhead is the bottleneck, and the cure is *more*
    coalescing, not less; without this regime the loop can tune
    ``max_wait`` to 0 at light load and then have no road back when a
    rate step turns singleton dispatches into a death spiral).  The
    decision table, with ``fill`` = mean recent batch / ``max_batch``:

    ====================  ======================================result
    backlogged                double ``max_batch`` and ``max_wait``
                              (multiplicative reopen: amortise the
                              per-batch overhead, escape fast)
    over, fill low            halve ``max_wait`` (deadline window
                              dominates the latency; 0 is reachable)
    over, fill high           process backend: double ``max_batch``
                              (count-bound and IPC-priced: amortise);
                              thread backend: halve ``max_batch``
                              (bursty load, giant batches head-of-line
                              block the pool)
    under, fill high          additive increase: ``max_batch`` += step,
                              and when batches saturate with the window
                              at 0, additively reopen ``max_wait``
    under, fill low           hold (deadline-bound at low load; there
                              is nothing to amortise)
    ====================  ======================================
    """

    def __init__(self, coalescer, stats, target_p95_ms: float,
                 is_process: bool = False,
                 min_batch: int = 8, max_batch_cap: int = 2048,
                 max_wait_cap: float = 0.02,
                 batch_step: int = 16, wait_step: float = 0.0005,
                 wait_floor: float = 1e-4, min_samples: int = 8):
        self.coalescer = coalescer
        self.stats = stats
        self.target_p95_ms = float(target_p95_ms)
        self.is_process = bool(is_process)
        self.min_batch = int(min_batch)
        self.max_batch_cap = int(max_batch_cap)
        self.max_wait_cap = float(max_wait_cap)
        self.batch_step = int(batch_step)
        self.wait_step = float(wait_step)
        self.wait_floor = float(wait_floor)
        self.min_samples = int(min_samples)
        self.ticks = 0
        self.decisions: Dict[str, int] = {}
        self.trajectory: deque = deque(maxlen=256)
        self._last_count = stats.latency.count
        self._over_ticks = 0
        self._started: Optional[float] = None

    def tick(self, now: float) -> str:
        """One control step; returns the decision name."""
        if self._started is None:
            self._started = now
        self.ticks += 1
        count = self.stats.latency.count
        fresh = count - self._last_count
        if fresh < self.min_samples:
            return self._record(now, None, "idle")
        self._last_count = count
        p95 = self.stats.latency.percentile(95) * 1e3
        batch = int(self.coalescer.max_batch)
        wait = float(self.coalescer.max_wait)
        fill = self.stats.recent_batch_mean() / max(batch, 1)
        decision = "hold"
        if p95 > self.target_p95_ms:
            self._over_ticks += 1
            backlogged = p95 > max(4.0 * wait * 1e3,
                                   2.0 * self.target_p95_ms)
            if backlogged:
                # p95 far beyond both the wait window and the target:
                # queueing, not the window -- reopen coalescing hard so
                # batches amortise the per-dispatch overhead again.  The
                # window is capped at the target itself: a coalescing
                # delay larger than the whole latency budget can only
                # rail the loop into self-inflicted overshoot
                batch = min(self.max_batch_cap, batch * 2)
                wait = min(self.max_wait_cap, self.target_p95_ms * 1e-3,
                           max(wait * 2, self.wait_step))
                decision = "amortize_backlog"
            elif fill < 0.5:
                # deadline-released batches: the wait window itself is
                # the latency; multiplicative backoff, snapping to the
                # immediate-flush end of the knob once below the floor
                wait = 0.0 if wait <= self.wait_floor else wait * 0.5
                decision = "shrink_wait"
            elif self.is_process:
                batch = min(self.max_batch_cap, batch * 2)
                decision = "grow_batch_ipc"
            else:
                batch = max(self.min_batch, batch // 2)
                decision = "shrink_batch"
        else:
            self._over_ticks = 0
            if fill >= 0.7 and batch < self.max_batch_cap:
                step = self.batch_step * (2 if self.is_process else 1)
                batch = min(self.max_batch_cap, batch + step)
                decision = "grow_batch"
            if fill >= 0.9 and wait < self.max_wait_cap:
                # count-saturated with latency headroom: additively
                # reopen the window (the road back from max_wait = 0)
                wait = min(self.max_wait_cap, wait + self.wait_step)
                decision = ("grow_batch_wait" if decision == "grow_batch"
                            else "grow_wait")
        if batch != self.coalescer.max_batch \
                or wait != self.coalescer.max_wait:
            self.coalescer.retune(max_batch=batch, max_wait=wait)
        return self._record(now, p95, decision)

    def _record(self, now: float, p95: Optional[float],
                decision: str) -> str:
        self.decisions[decision] = self.decisions.get(decision, 0) + 1
        if decision != "idle":
            self.trajectory.append({
                "t": round(now - (self._started or now), 3),
                "p95_ms": round(p95, 3) if p95 is not None else None,
                "max_batch": int(self.coalescer.max_batch),
                "max_wait_ms": round(self.coalescer.max_wait * 1e3, 4),
                "decision": decision,
            })
        return decision

    def snapshot(self) -> Dict[str, object]:
        return {
            "target_p95_ms": self.target_p95_ms,
            "max_batch": int(self.coalescer.max_batch),
            "max_wait_ms": round(self.coalescer.max_wait * 1e3, 4),
            "ticks": self.ticks,
            "decisions": dict(self.decisions),
            "trajectory": list(self.trajectory)[-32:],
        }


# -- shard balance watchdog ------------------------------------------------

class SkewWatch:
    """Debounced skew trigger: fire after ``patience`` bad ticks in a row.

    A single slow tick (GC pause, one hot query) must not pay a
    re-shard; sustained imbalance -- repair-grown shards or a traffic
    hotspot -- should.  After firing, the streak resets so the next
    re-shard needs fresh evidence against the *new* decomposition.
    """

    def __init__(self, threshold: float, patience: int = 2):
        if threshold <= 1.0:
            raise ValueError("skew threshold must be > 1")
        self.threshold = float(threshold)
        self.patience = max(int(patience), 1)
        self._streaks: Dict[str, int] = {}

    def observe(self, root: str, skew: float) -> bool:
        """Record one tick's skew; True when a re-shard should fire."""
        if skew > self.threshold:
            streak = self._streaks.get(root, 0) + 1
        else:
            streak = 0
        self._streaks[root] = streak
        if streak >= self.patience:
            self._streaks[root] = 0
            return True
        return False

    def forget(self, root: str) -> None:
        self._streaks.pop(root, None)


# -- controller ------------------------------------------------------------

class AdaptiveController:
    """The engine's feedback loop: one daemon thread, three controllers.

    Every ``interval`` seconds (or on an explicit :meth:`tick` with a
    fake clock, for tests) it runs the coalescer tuner, then sweeps the
    registered datasets for shard skew and triggers
    :meth:`~repro.engine.engine.SpatialQueryEngine.reshard` when the
    watchdog fires.  :meth:`snapshot` is the ``health()["adaptive"]``
    block.
    """

    def __init__(self, engine, target_p95_ms: float = 25.0,
                 skew_threshold: float = 3.0, interval: float = 0.25,
                 patience: int = 2,
                 clock: Callable[[], float] = time.monotonic):
        self.engine = engine
        self.interval = float(interval)
        self.clock = clock
        self.tuner = CoalescerTuner(engine._coalescer, engine.stats,
                                    target_p95_ms,
                                    is_process=engine._is_process)
        self.watch = SkewWatch(skew_threshold, patience=patience)
        self.ticks = 0
        self.errors = 0
        self.skew: Dict[str, float] = {}
        self.reshard_log: deque = deque(maxlen=32)
        self.initial_choices: Dict[str, Dict[str, object]] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-engine-adaptive")
        self._thread.start()

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:   # noqa: BLE001 - the loop must survive
                self.errors += 1

    # -- control ---------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> None:
        """One control step: tune the coalescer, then check balance."""
        now = self.clock() if now is None else now
        with self._lock:
            self.ticks += 1
            self.tuner.tick(now)
            self._check_balance()

    def choose_initial(self, root: str, lines: np.ndarray,
                       domain: float) -> Optional[Tuple[int, str]]:
        """Measured (K, ordering) for a newly registered dataset."""
        choice = probe_shard_params(lines, domain)
        with self._lock:
            self.initial_choices[root] = choice
        return int(choice["shards"]), str(choice["ordering"])

    def _check_balance(self) -> None:
        eng = self.engine
        for row in eng.registry.datasets_info():
            if not row.get("latest"):
                continue
            root = row["root"]
            skew, shards = eng._shard_skew(row["fingerprint"])
            if skew is None:
                continue
            self.skew[root] = round(float(skew), 3)
            if not self.watch.observe(root, skew):
                continue
            try:
                report = eng.reshard(root)
            except Exception as exc:  # noqa: BLE001 - log, keep ticking
                self.errors += 1
                self.reshard_log.append({"root": root, "skew": self.skew[root],
                                         "error": repr(exc)})
            else:
                if report is not None:
                    self.reshard_log.append(report)

    # -- readout ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            out = {"enabled": True, "interval_s": self.interval,
                   "ticks": self.ticks, "errors": self.errors,
                   "skew_threshold": self.watch.threshold,
                   "skew": dict(self.skew),
                   "reshards": list(self.reshard_log),
                   "initial_choices": {
                       root[:12]: choice
                       for root, choice in self.initial_choices.items()}}
            out.update(self.tuner.snapshot())
            return out
