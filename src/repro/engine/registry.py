"""Fingerprint-keyed index registry with an LRU cache.

The serving layer's indexes are pure functions of ``(dataset,
structure, build parameters)``: the PM1 and bucket PMR decompositions
are shape-deterministic (DESIGN.md Section 5) and the R-tree build is
seeded only by its input order.  That determinism is what makes
caching safe -- a fingerprint of the segment array plus the canonical
parameter tuple fully identifies the built structure, so concurrent
readers can share one immutable index without coordination.

The registry therefore keeps two maps:

* ``datasets``: fingerprint -> the registered segment array (held
  read-only so a misbehaving caller cannot mutate data under a cached
  index), and
* an LRU-ordered cache of built indexes, capped at ``capacity``.

With a :class:`~repro.store.IndexStore` attached the cache grows a
second, persistent tier: an index evicted from memory *spills* to disk
instead of being dropped, a memory miss probes the store before paying
a rebuild (the disk hit restores the original build accounting from
the entry's manifest), and a corrupted store file is quarantined and
rebuilt transparently.

Dynamic updates (:mod:`repro.structures.dynamic`) go through
:meth:`IndexRegistry.apply_update`, which registers the new dataset and
*invalidates* every cached index of the old fingerprint -- the explicit
hook the engine uses so stale trees are never served after an insert or
delete.  Invalidation covers both tiers: the fingerprint's store
entries are deleted along with its in-memory indexes.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..machine import Machine, use_machine
from ..structures import build_bucket_pmr, build_pm1, build_rtree, build_sharded

__all__ = ["dataset_fingerprint", "IndexKey", "BuiltIndex", "IndexRegistry"]


def dataset_fingerprint(lines: np.ndarray) -> str:
    """Stable content hash of a segment array.

    Canonicalises to a C-contiguous float64 ``(n, 4)`` array so the
    fingerprint depends only on the values, not on layout or dtype.
    """
    arr = np.ascontiguousarray(np.asarray(lines, dtype=np.float64).reshape(-1, 4))
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class IndexKey:
    """Cache key: what was indexed, how, and with which parameters."""

    fingerprint: str
    structure: str
    params: Tuple[Tuple[str, object], ...]

    @classmethod
    def make(cls, fingerprint: str, structure: str, **params) -> "IndexKey":
        return cls(fingerprint, structure, tuple(sorted(params.items())))


@dataclass
class BuiltIndex:
    """A cached immutable index plus its build accounting."""

    key: IndexKey
    tree: object
    build_steps: float
    build_primitives: int
    num_lines: int


def _next_pow2(x: float) -> int:
    n = 1
    while n < x:
        n *= 2
    return n


class IndexRegistry:
    """Thread-safe build-on-demand index cache with LRU eviction.

    Parameters
    ----------
    capacity:
        Maximum number of *built indexes* kept in memory (datasets are
        retained until :meth:`forget`); least-recently-used entries are
        evicted first -- spilled to ``store`` when one is attached,
        dropped otherwise.
    store:
        Optional :class:`repro.store.IndexStore` used as the persistent
        second cache tier.
    injector:
        Optional :class:`repro.resilience.FaultInjector`; consulted at
        the ``registry.get`` site on every lookup so chaos tests can
        simulate failing builds and wedged loaders.
    """

    #: structure name -> builder(lines, domain, **params) -> tree
    BUILDERS: Dict[str, Callable] = {}

    def __init__(self, capacity: int = 8, store=None, injector=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.store = store
        self.injector = injector
        self._lock = threading.RLock()
        self._datasets: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._domains: Dict[str, int] = {}
        self._cache: "OrderedDict[IndexKey, BuiltIndex]" = OrderedDict()
        #: id(array) -> (weakref, fingerprint): skips re-hashing when the
        #: same (now read-only) array object is registered repeatedly
        self._fp_cache: Dict[int, Tuple[weakref.ref, str]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.spills = 0
        self.disk_hits = 0

    # -- datasets --------------------------------------------------------

    def register(self, lines: np.ndarray, domain: Optional[int] = None) -> str:
        """Register a segment array; returns its fingerprint.

        ``domain`` (the power-of-two space side the quadtree builders
        need) defaults to the smallest power of two covering every
        coordinate.  The fingerprint is memoised per array *object*:
        re-registering the same array skips the full re-hash.  That is
        safe only because registration freezes the array -- the cache
        is populated exclusively for arrays this registry made
        read-only, so the cached hash can never go stale under a
        mutation.
        """
        with self._lock:
            cached = self._fp_cache.get(id(lines))
        if cached is not None and cached[0]() is lines:
            arr, fp = lines, cached[1]
        else:
            arr = np.asarray(lines)
            if not (arr.dtype == np.float64 and arr.ndim == 2
                    and arr.shape[1:] == (4,) and arr.flags.c_contiguous):
                arr = np.ascontiguousarray(
                    np.asarray(lines, dtype=np.float64).reshape(-1, 4))
            arr.setflags(write=False)
            fp = dataset_fingerprint(arr)
            if arr is lines:
                # canonical input, frozen above: identity-cacheable.
                # the weakref callback evicts the slot before the id
                # can be reused by a new object.
                key = id(arr)
                cache = self._fp_cache
                ref = weakref.ref(arr,
                                  lambda _, k=key: cache.pop(k, None))
                with self._lock:
                    self._fp_cache[key] = (ref, fp)
        if domain is None:
            top = float(arr.max()) if arr.size else 1.0
            domain = _next_pow2(max(top, 1.0))
        with self._lock:
            self._datasets[fp] = arr
            self._domains[fp] = int(domain)
        return fp

    def dataset(self, fingerprint: str) -> np.ndarray:
        with self._lock:
            try:
                return self._datasets[fingerprint]
            except KeyError:
                raise KeyError(f"unknown dataset fingerprint {fingerprint!r}")

    def domain(self, fingerprint: str) -> int:
        with self._lock:
            return self._domains[fingerprint]

    def dataset_snapshot(self, fingerprint: str):
        """``(lines, domain)`` for shipping to a process-pool worker.

        The array is the registered read-only canonical form, so it
        pickles as-is and the worker's rebuild is bit-identical to a
        parent-side build of the same key.
        """
        with self._lock:
            try:
                return self._datasets[fingerprint], self._domains[fingerprint]
            except KeyError:
                raise KeyError(f"unknown dataset fingerprint {fingerprint!r}")

    def datasets_info(self):
        """Registration order, one row per dataset -- what a network
        client needs to address probes (the ``datasets`` request kind)."""
        with self._lock:
            return [{"fingerprint": fp, "num_lines": int(arr.shape[0]),
                     "domain": int(self._domains[fp])}
                    for fp, arr in self._datasets.items()]

    def forget(self, fingerprint: str) -> None:
        """Drop a dataset and every index built from it."""
        with self._lock:
            self._datasets.pop(fingerprint, None)
            self._domains.pop(fingerprint, None)
        self.invalidate(fingerprint)

    # -- indexes ---------------------------------------------------------

    def get(self, fingerprint: str, structure: str, **params) -> BuiltIndex:
        """Return the cached index, loading or building it on a miss.

        Miss path with a store attached: probe the disk tier first --
        a verified load is counted as a ``disk_hit`` and re-enters the
        memory cache with its original build accounting; a missing or
        quarantined file falls through to a fresh build.
        """
        if structure not in self.BUILDERS:
            raise ValueError(f"unknown structure {structure!r}; "
                             f"available: {sorted(self.BUILDERS)}")
        if self.injector is not None:
            # fires even on a cache hit: an injected error here models
            # any failing index lookup, not just a failing build
            self.injector.fire("registry.get", fingerprint=fingerprint,
                               structure=structure)
        key = IndexKey.make(fingerprint, structure, **params)
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self.hits += 1
                return entry
            self.misses += 1
            lines = self.dataset(fingerprint)
            dom = self._domains[fingerprint]
        # load / build outside the lock: builds are deterministic, so a
        # racing duplicate wastes work but never yields a wrong entry
        if self.store is not None:
            probe = self.store.get(key)
            if probe is not None:
                tree, manifest = probe
                entry = BuiltIndex(
                    key, tree,
                    float(manifest.get("build_steps", 0.0)),
                    int(manifest.get("build_primitives", 0)),
                    int(manifest.get("num_lines", lines.shape[0])))
                with self._lock:
                    self.disk_hits += 1
                self._insert(entry)
                return entry
        machine = Machine()
        with use_machine(machine):
            tree = self.BUILDERS[structure](lines, dom, **params)
        entry = BuiltIndex(key, tree, machine.steps, machine.total_primitives,
                           int(lines.shape[0]))
        self._insert(entry)
        return entry

    def _insert(self, entry: BuiltIndex) -> None:
        """Admit one entry to the memory tier, spilling any evictees.

        The spill happens under the registry lock so an eviction can
        never interleave with :meth:`invalidate` deleting the same
        fingerprint's store entries and resurrect a doomed index.
        """
        with self._lock:
            self._cache[entry.key] = entry
            self._cache.move_to_end(entry.key)
            while len(self._cache) > self.capacity:
                _, victim = self._cache.popitem(last=False)
                self.evictions += 1
                if self.store is not None:
                    try:
                        self.store.put(victim.key, victim.tree,
                                       build_steps=victim.build_steps,
                                       build_primitives=victim.build_primitives,
                                       num_lines=victim.num_lines)
                        self.spills += 1
                    except OSError:
                        pass   # disk full / unwritable: plain eviction

    def persist(self, fingerprint: str, structure: str, **params) -> str:
        """Build (or fetch) an index and write it to the store now.

        The warm-up hook behind ``repro store prefetch``: unlike the
        spill-on-evict path this writes unconditionally, so a cache
        directory can be seeded ahead of serving.  Returns the archive
        path.
        """
        if self.store is None:
            raise RuntimeError("no IndexStore attached to this registry")
        entry = self.get(fingerprint, structure, **params)
        return self.store.put(entry.key, entry.tree,
                              build_steps=entry.build_steps,
                              build_primitives=entry.build_primitives,
                              num_lines=entry.num_lines)

    def spill_all(self) -> int:
        """Spill every in-memory index not already on disk; returns count.

        Called on engine shutdown so the next process warm-starts from
        the store instead of rebuilding.
        """
        if self.store is None:
            return 0
        with self._lock:
            entries = list(self._cache.values())
        n = 0
        for entry in entries:
            if self.store.contains(entry.key):
                continue   # deterministic content: the bytes match
            try:
                self.store.put(entry.key, entry.tree,
                               build_steps=entry.build_steps,
                               build_primitives=entry.build_primitives,
                               num_lines=entry.num_lines)
            except OSError:
                continue
            with self._lock:
                self.spills += 1
            n += 1
        return n

    def invalidate(self, fingerprint: Optional[str] = None) -> int:
        """Drop cached indexes (all of them, or one dataset's); returns count.

        This is the hook :mod:`repro.structures.dynamic` updates call
        through -- after an insert/delete the old fingerprint's trees
        must never be served again.  Both tiers are covered: the store's
        entries for the fingerprint are deleted too, so a disk probe can
        never resurrect a stale tree.
        """
        with self._lock:
            if fingerprint is None:
                n = len(self._cache)
                self._cache.clear()
            else:
                doomed = [k for k in self._cache if k.fingerprint == fingerprint]
                for k in doomed:
                    del self._cache[k]
                n = len(doomed)
            self.invalidations += n
            if self.store is not None:
                if fingerprint is None:
                    self.store.clear()
                else:
                    self.store.delete_fingerprint(fingerprint)
            return n

    def apply_update(self, fingerprint: str,
                     update: Callable[[np.ndarray], np.ndarray]) -> str:
        """Apply a dataset update and invalidate the stale indexes.

        ``update`` maps the old segment array to the new one (e.g. a
        vstack for inserts, a row selection for deletes -- the canonical
        rebuild semantics of :mod:`repro.structures.dynamic`).  Returns
        the new fingerprint.
        """
        old = self.dataset(fingerprint)
        new_fp = self.register(update(old))
        self.invalidate(fingerprint)
        return new_fp

    def insert_lines(self, fingerprint: str, new_lines: np.ndarray) -> str:
        """Convenience :meth:`apply_update` for appending segments."""
        new_lines = np.asarray(new_lines, dtype=np.float64).reshape(-1, 4)
        return self.apply_update(
            fingerprint,
            lambda old: np.vstack([old, new_lines]) if old.size else new_lines)

    def delete_lines(self, fingerprint: str, ids) -> str:
        """Convenience :meth:`apply_update` for removing segments by id."""
        ids = np.asarray(ids, dtype=np.int64)
        return self.apply_update(
            fingerprint, lambda old: np.delete(old, ids, axis=0))

    # -- stats -----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            total = self.hits + self.misses
            out = {
                "datasets": float(len(self._datasets)),
                "cached_indexes": float(len(self._cache)),
                "capacity": float(self.capacity),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "hit_rate": (self.hits / total) if total else 0.0,
                "evictions": float(self.evictions),
                "invalidations": float(self.invalidations),
                "spills": float(self.spills),
                "disk_hits": float(self.disk_hits),
            }
        if self.store is not None:
            out["store"] = self.store.snapshot()
        return out

    def cached_keys(self):
        """LRU-ordered cache keys, oldest first (for tests/introspection)."""
        with self._lock:
            return list(self._cache)


def _build_pmr(lines, domain, capacity: int = 8, max_depth=None,
               shards: int = 1, ordering: str = "morton"):
    if int(shards) > 1:
        return build_sharded(lines, domain, structure="pmr", shards=shards,
                             ordering=ordering, capacity=capacity,
                             max_depth=max_depth)
    tree, _ = build_bucket_pmr(lines, domain, capacity, max_depth=max_depth)
    return tree


def _build_pm1(lines, domain, max_depth=None,
               shards: int = 1, ordering: str = "morton"):
    if int(shards) > 1:
        return build_sharded(lines, domain, structure="pm1", shards=shards,
                             ordering=ordering, max_depth=max_depth)
    tree, _ = build_pm1(lines, domain, max_depth=max_depth)
    return tree


def _build_rtree(lines, domain, min_fill: int = 2, capacity: int = 8,
                 shards: int = 1, ordering: str = "morton"):
    # domain is irrelevant to the R-tree itself but keys the shard cut
    if int(shards) > 1:
        return build_sharded(lines, domain, structure="rtree", shards=shards,
                             ordering=ordering, capacity=capacity,
                             min_fill=min_fill)
    tree, _ = build_rtree(lines, min_fill, capacity)
    return tree


IndexRegistry.BUILDERS = {
    "pmr": _build_pmr,
    "pm1": _build_pm1,
    "rtree": _build_rtree,
}
