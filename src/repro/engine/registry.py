"""Fingerprint-keyed index registry with an LRU cache.

The serving layer's indexes are pure functions of ``(dataset,
structure, build parameters)``: the PM1 and bucket PMR decompositions
are shape-deterministic (DESIGN.md Section 5) and the R-tree build is
seeded only by its input order.  That determinism is what makes
caching safe -- a fingerprint of the segment array plus the canonical
parameter tuple fully identifies the built structure, so concurrent
readers can share one immutable index without coordination.

The registry therefore keeps two maps:

* ``datasets``: fingerprint -> the registered segment array (held
  read-only so a misbehaving caller cannot mutate data under a cached
  index), and
* an LRU-ordered cache of built indexes, capped at ``capacity``.

With a :class:`~repro.store.IndexStore` attached the cache grows a
second, persistent tier: an index evicted from memory *spills* to disk
instead of being dropped, a memory miss probes the store before paying
a rebuild (the disk hit restores the original build accounting from
the entry's manifest), and a corrupted store file is quarantined and
rebuilt transparently.

Dynamic updates are **versioned** (MVCC for indexes).  Every dataset
fingerprint belongs to a *chain* anchored at its root (the fingerprint
of version 0); :meth:`IndexRegistry.mutate` commits a delete-then-insert
batch as a new chain entry whose content fingerprint is computed the
usual way, so snapshot isolation falls out of content addressing: a
reader that resolved the chain before the commit keeps querying the old
content fingerprint and cannot observe the new version.  Any
fingerprint in a chain :meth:`resolve`\\ s to the chain's *latest*
version -- clients keep using the handle they first registered and
always read their writes.

Commits are **lazy**: no index is built and no cached tree is touched
at mutation time.  The first read of the new version either *repairs*
the previous version's sharded index (:func:`repair_sharded`, rebuilding
only the curve ranges the mutation touched) when the parent tree is
still in the memory tier and ``repair_enabled`` is set, or pays one
canonical build.  The last ``versions_retained`` versions stay warm in
both tiers; older versions are collected -- datasets, cached indexes,
and store entries -- unless :meth:`pin`\\ ned by an in-flight read, in
which case collection is deferred to the last :meth:`unpin`.

:meth:`apply_update` keeps the legacy eager semantics (register the new
dataset, invalidate the old fingerprint's indexes in both tiers) for
callers that bypass the version chain.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..machine import Machine, use_machine
from ..resilience.faults import InjectedFault
from ..shm import INDEX_PREFIX, attach_payload
from ..store import store_key_id
from ..structures import (build_bucket_pmr, build_pm1, build_rtree,
                          build_sharded)
from ..structures.io import payload_to_tree
from ..structures.sharded import ShardedIndex, repair_sharded

__all__ = ["dataset_fingerprint", "IndexKey", "BuiltIndex", "VersionInfo",
           "IndexRegistry"]


def dataset_fingerprint(lines: np.ndarray) -> str:
    """Stable content hash of a segment array.

    Canonicalises to a C-contiguous float64 ``(n, 4)`` array so the
    fingerprint depends only on the values, not on layout or dtype.
    """
    arr = np.ascontiguousarray(np.asarray(lines, dtype=np.float64).reshape(-1, 4))
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class IndexKey:
    """Cache key: what was indexed, how, and with which parameters."""

    fingerprint: str
    structure: str
    params: Tuple[Tuple[str, object], ...]

    @classmethod
    def make(cls, fingerprint: str, structure: str, **params) -> "IndexKey":
        return cls(fingerprint, structure, tuple(sorted(params.items())))


@dataclass
class BuiltIndex:
    """A cached immutable index plus its build accounting.

    ``repaired_from``/``repair`` record provenance when the tree came
    from an incremental shard repair of the named parent version rather
    than a canonical build (answers are identical either way -- the
    differential invariant).
    """

    key: IndexKey
    tree: object
    build_steps: float
    build_primitives: int
    num_lines: int
    repaired_from: Optional[str] = None
    repair: Optional[Dict[str, object]] = None


@dataclass(frozen=True)
class VersionInfo:
    """One resolved position in a dataset's version chain."""

    root: str          # the chain's handle: version 0's fingerprint
    version: int       # 0-based position in the chain
    fingerprint: str   # content fingerprint of this version
    num_lines: int


def _next_pow2(x: float) -> int:
    n = 1
    while n < x:
        n *= 2
    return n


class IndexRegistry:
    """Thread-safe build-on-demand index cache with LRU eviction.

    Parameters
    ----------
    capacity:
        Maximum number of *built indexes* kept in memory (datasets are
        retained until :meth:`forget`); least-recently-used entries are
        evicted first -- spilled to ``store`` when one is attached,
        dropped otherwise.
    store:
        Optional :class:`repro.store.IndexStore` used as the persistent
        second cache tier.
    injector:
        Optional :class:`repro.resilience.FaultInjector`; consulted at
        the ``registry.get`` site on every lookup so chaos tests can
        simulate failing builds and wedged loaders.
    """

    #: structure name -> builder(lines, domain, **params) -> tree
    BUILDERS: Dict[str, Callable] = {}

    def __init__(self, capacity: int = 8, store=None, injector=None,
                 versions_retained: int = 2):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if versions_retained < 1:
            raise ValueError("versions_retained must be >= 1")
        self.capacity = capacity
        self.store = store
        self.injector = injector
        self.versions_retained = versions_retained
        #: optional :class:`~repro.shm.ShmArena` -- when the engine
        #: attaches one, retiring a fingerprint also unlinks its
        #: published shared-memory blocks so workers cannot map stale
        #: datasets or index payloads
        self.arena = None
        #: incremental shard repair on first read of a new version.
        #: Workers must agree with the parent's decomposition shard for
        #: shard, so the engine's commit path makes every repaired
        #: payload worker-visible (store bytes and/or arena pages)
        #: *before* reads flip -- and falls back to a canonical rebuild
        #: when it cannot
        self.repair_enabled = True
        self._lock = threading.RLock()
        self._datasets: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._domains: Dict[str, int] = {}
        self._cache: "OrderedDict[IndexKey, BuiltIndex]" = OrderedDict()
        #: id(array) -> (weakref, fingerprint): skips re-hashing when the
        #: same (now read-only) array object is registered repeatedly
        self._fp_cache: Dict[int, Tuple[weakref.ref, str]] = {}
        # -- version chains (MVCC) ----------------------------------------
        self._roots: Dict[str, str] = {}          # any chain fp -> root fp
        self._chains: Dict[str, List[str]] = {}   # root -> fps, idx = version
        self._pins: Dict[str, int] = {}           # fp -> in-flight readers
        self._doomed: set = set()                 # retired fps awaiting unpin
        #: child fp -> (parent fp, deleted old ids, inserted row count)
        self._repair_hints: Dict[str, Tuple[str, np.ndarray, int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.spills = 0
        self.disk_hits = 0
        self.repairs = 0
        self.repair_full_rebuilds = 0
        self.shm_rehydrations = 0
        self.versions_committed = 0
        self.versions_collected = 0

    # -- datasets --------------------------------------------------------

    def register(self, lines: np.ndarray, domain: Optional[int] = None) -> str:
        """Register a segment array; returns its fingerprint.

        ``domain`` (the power-of-two space side the quadtree builders
        need) defaults to the smallest power of two covering every
        coordinate.  The fingerprint is memoised per array *object*:
        re-registering the same array skips the full re-hash.  That is
        safe only because registration freezes the array -- the cache
        is populated exclusively for arrays this registry made
        read-only, so the cached hash can never go stale under a
        mutation.
        """
        with self._lock:
            cached = self._fp_cache.get(id(lines))
        if cached is not None and cached[0]() is lines:
            arr, fp = lines, cached[1]
        else:
            arr = np.asarray(lines)
            if not (arr.dtype == np.float64 and arr.ndim == 2
                    and arr.shape[1:] == (4,) and arr.flags.c_contiguous):
                arr = np.ascontiguousarray(
                    np.asarray(lines, dtype=np.float64).reshape(-1, 4))
            arr.setflags(write=False)
            fp = dataset_fingerprint(arr)
            if arr is lines:
                # canonical input, frozen above: identity-cacheable.
                # the weakref callback evicts the slot before the id
                # can be reused by a new object.
                key = id(arr)
                cache = self._fp_cache
                ref = weakref.ref(arr,
                                  lambda _, k=key: cache.pop(k, None))
                with self._lock:
                    self._fp_cache[key] = (ref, fp)
        if domain is None:
            top = float(arr.max()) if arr.size else 1.0
            domain = _next_pow2(max(top, 1.0))
        with self._lock:
            self._datasets[fp] = arr
            self._domains[fp] = int(domain)
            if fp not in self._roots:
                # a fresh dataset anchors its own version chain
                self._roots[fp] = fp
                self._chains[fp] = [fp]
        return fp

    def dataset(self, fingerprint: str) -> np.ndarray:
        with self._lock:
            try:
                return self._datasets[fingerprint]
            except KeyError:
                raise KeyError(f"unknown dataset fingerprint {fingerprint!r}")

    def domain(self, fingerprint: str) -> int:
        with self._lock:
            return self._domains[fingerprint]

    def dataset_snapshot(self, fingerprint: str):
        """``(lines, domain)`` for shipping to a process-pool worker.

        The array is the registered read-only canonical form, so it
        pickles as-is and the worker's rebuild is bit-identical to a
        parent-side build of the same key.
        """
        with self._lock:
            try:
                return self._datasets[fingerprint], self._domains[fingerprint]
            except KeyError:
                raise KeyError(f"unknown dataset fingerprint {fingerprint!r}")

    def datasets_info(self):
        """Registration order, one row per dataset -- what a network
        client needs to address probes (the ``datasets`` request kind)."""
        with self._lock:
            rows = []
            for fp, arr in self._datasets.items():
                root = self._roots.get(fp, fp)
                chain = self._chains.get(root, [fp])
                version = chain.index(fp) if fp in chain else -1
                rows.append({"fingerprint": fp,
                             "num_lines": int(arr.shape[0]),
                             "domain": int(self._domains[fp]),
                             "root": root, "version": version,
                             "latest": chain[-1] == fp})
            return rows

    def forget(self, fingerprint: str) -> None:
        """Drop a dataset, every index built from it, and its chain slot."""
        with self._lock:
            self._datasets.pop(fingerprint, None)
            self._domains.pop(fingerprint, None)
            self._repair_hints.pop(fingerprint, None)
            root = self._roots.pop(fingerprint, None)
            chain = self._chains.get(root) if root is not None else None
            if chain is not None:
                if fingerprint in chain:
                    chain.remove(fingerprint)
                if not chain:
                    self._chains.pop(root, None)
        self.invalidate(fingerprint)
        if self.arena is not None:
            self.arena.release_fingerprint(fingerprint)

    # -- version chains (MVCC) -------------------------------------------

    def resolve(self, fingerprint: str) -> VersionInfo:
        """The *latest* version of the chain ``fingerprint`` belongs to.

        Any fingerprint ever part of the chain -- including retired
        versions whose data was collected -- resolves, so a client can
        keep addressing probes by the handle it first registered
        (read-your-writes across mutations).
        """
        with self._lock:
            root = self._roots.get(fingerprint)
            if root is None:
                raise KeyError(
                    f"unknown dataset fingerprint {fingerprint!r}")
            chain = self._chains[root]
            cur = chain[-1]
            return VersionInfo(root, len(chain) - 1, cur,
                               int(self._datasets[cur].shape[0]))

    def version_of(self, fingerprint: str) -> int:
        """Chain position of this exact content fingerprint (-1: unknown)."""
        with self._lock:
            root = self._roots.get(fingerprint)
            if root is None:
                return -1
            try:
                return self._chains[root].index(fingerprint)
            except ValueError:
                return -1   # staged but never activated

    def pin(self, fingerprint: str) -> None:
        """Hold a version's data live for an in-flight read."""
        with self._lock:
            self._pins[fingerprint] = self._pins.get(fingerprint, 0) + 1

    def unpin(self, fingerprint: str) -> None:
        """Release one pin; collects the version if retirement waited."""
        reap = False
        with self._lock:
            n = self._pins.get(fingerprint, 0) - 1
            if n > 0:
                self._pins[fingerprint] = n
            else:
                self._pins.pop(fingerprint, None)
                if fingerprint in self._doomed:
                    self._doomed.discard(fingerprint)
                    reap = True
        if reap:
            self._collect(fingerprint)

    def stage_version(self, fingerprint: str, new_lines: np.ndarray,
                      delete_ids=None, n_inserted: int = 0) -> VersionInfo:
        """Register a mutated dataset as the chain's *candidate* next
        version without flipping reads to it.

        The new content is registered (and its repair hint recorded)
        but the chain is not extended: :meth:`resolve` keeps returning
        the old version until :meth:`activate_version`, so the engine
        can warm the new index first and a failed build leaves the
        readable snapshot untouched (:meth:`abandon_version`).  Returns
        the prospective :class:`VersionInfo`; a no-op mutation (content
        unchanged) returns the current version instead.
        """
        cur = self.resolve(fingerprint)
        new_lines = np.ascontiguousarray(
            np.asarray(new_lines, dtype=np.float64).reshape(-1, 4))
        # the domain can only grow: an insert outside the old space
        # re-covers it with the next power of two (triggering one full
        # rebuild); staying put keeps decompositions comparable
        old_dom = self.domain(cur.fingerprint)
        top = float(new_lines.max()) if new_lines.size else 1.0
        new_fp = self.register(new_lines,
                               domain=max(old_dom, _next_pow2(max(top, 1.0))))
        with self._lock:
            if new_fp == cur.fingerprint:
                return cur
            chain = self._chains[cur.root]
            if self._roots.get(new_fp) == new_fp \
                    and self._chains.get(new_fp) == [new_fp] \
                    and new_fp not in chain:
                # fresh content: re-anchor it from its own singleton
                # chain onto this dataset's chain
                self._chains.pop(new_fp)
                self._roots[new_fp] = cur.root
            del_ids = (np.unique(np.asarray(delete_ids,
                                            dtype=np.int64).reshape(-1))
                       if delete_ids is not None
                       else np.zeros(0, dtype=np.int64))
            self._repair_hints[new_fp] = (cur.fingerprint, del_ids,
                                          int(n_inserted))
            return VersionInfo(cur.root, cur.version + 1, new_fp,
                               int(new_lines.shape[0]))

    def activate_version(self, fingerprint: str) -> VersionInfo:
        """Flip the chain's latest version to a staged fingerprint.

        New :meth:`resolve` calls see the new version from here on.
        Versions older than the retention window are collected from
        both tiers -- deferred per-version while :meth:`pin`\\ s hold
        them for in-flight reads.
        """
        with self._lock:
            root = self._roots.get(fingerprint)
            if root is None:
                raise KeyError(f"unknown staged fingerprint {fingerprint!r}")
            chain = self._chains[root]
            if fingerprint not in chain:
                chain.append(fingerprint)
                self.versions_committed += 1
            retired = [fp for fp in chain[:-self.versions_retained]
                       if fp in self._datasets]
            pinned = [fp for fp in retired if self._pins.get(fp, 0) > 0]
            self._doomed.update(pinned)
        for fp in retired:
            if fp not in pinned:
                self._collect(fp)
        return self.resolve(fingerprint)

    def adopt_root(self, alias: str, fingerprint: str) -> None:
        """Point an old chain handle at another (recovered) chain.

        Crash recovery replays a journal onto the chain anchored at the
        checkpoint's fingerprint, but clients keep addressing probes by
        the handle they learned before the crash -- the journal
        directory's root.  Aliasing re-routes :meth:`resolve` for the
        old handle onto the recovered chain; an ``alias`` that already
        anchors real history (a non-singleton chain) is refused, since
        recovery must run before new mutations.
        """
        with self._lock:
            root = self._roots.get(fingerprint)
            if root is None:
                raise KeyError(
                    f"unknown dataset fingerprint {fingerprint!r}")
            if self._roots.get(alias) == root:
                return
            chain = self._chains.get(alias)
            if chain is not None and chain != [alias]:
                raise ValueError(
                    f"cannot alias {alias!r}: it anchors a chain with "
                    f"{len(chain)} versions")
            self._chains.pop(alias, None)
            self._roots[alias] = root

    def abandon_version(self, fingerprint: str) -> None:
        """Discard a staged version whose index build failed.

        Never touches an *activated* version: the readable snapshot and
        the chain stay exactly as they were before the staging.
        """
        with self._lock:
            root = self._roots.get(fingerprint)
            if root is None or fingerprint in self._chains.get(root, ()):
                return
            self._roots.pop(fingerprint, None)
            self._repair_hints.pop(fingerprint, None)
            self._datasets.pop(fingerprint, None)
            self._domains.pop(fingerprint, None)

    def _collect(self, fingerprint: str) -> None:
        """Reclaim a retired version: dataset, cached indexes, store
        entries, and any repair hint that names it as a parent."""
        with self._lock:
            self._datasets.pop(fingerprint, None)
            self._domains.pop(fingerprint, None)
            self._repair_hints.pop(fingerprint, None)
            for child in [c for c, h in self._repair_hints.items()
                          if h[0] == fingerprint]:
                del self._repair_hints[child]
            for key in [k for k in self._cache
                        if k.fingerprint == fingerprint]:
                del self._cache[key]
            self.versions_collected += 1
        if self.store is not None:
            self.store.delete_fingerprint(fingerprint)
        if self.arena is not None:
            self.arena.release_fingerprint(fingerprint)

    def mutate(self, fingerprint: str, insert=None,
               delete_ids=None) -> VersionInfo:
        """Commit one delete-then-insert batch as the new active version.

        Deletes name row ids of the *current* version and are applied
        first; inserted rows are appended after the survivors.  Lazy:
        no index is built here -- the first read pays a repair or one
        canonical build -- and the previous version stays readable
        until the retention window pushes it out.
        """
        cur = self.resolve(fingerprint)
        old = self.dataset(cur.fingerprint)
        del_ids = (np.unique(np.asarray(delete_ids,
                                        dtype=np.int64).reshape(-1))
                   if delete_ids is not None
                   else np.zeros(0, dtype=np.int64))
        if del_ids.size and (del_ids[0] < 0
                             or del_ids[-1] >= old.shape[0]):
            raise IndexError(
                f"delete ids out of range for {old.shape[0]} lines")
        ins = (np.asarray(insert, dtype=np.float64).reshape(-1, 4)
               if insert is not None else np.zeros((0, 4)))
        if not del_ids.size and not ins.shape[0]:
            return cur
        keep = np.ones(old.shape[0], dtype=bool)
        keep[del_ids] = False
        new_lines = np.vstack([old[keep], ins])
        staged = self.stage_version(fingerprint, new_lines,
                                    delete_ids=del_ids,
                                    n_inserted=ins.shape[0])
        if staged.fingerprint == cur.fingerprint:
            return cur
        return self.activate_version(staged.fingerprint)

    # -- indexes ---------------------------------------------------------

    def get(self, fingerprint: str, structure: str, **params) -> BuiltIndex:
        """Return the cached index, loading or building it on a miss.

        Miss path with a store attached: probe the disk tier first --
        a verified load is counted as a ``disk_hit`` and re-enters the
        memory cache with its original build accounting; a missing or
        quarantined file falls through to a fresh build.
        """
        if structure not in self.BUILDERS:
            raise ValueError(f"unknown structure {structure!r}; "
                             f"available: {sorted(self.BUILDERS)}")
        if self.injector is not None:
            # fires even on a cache hit: an injected error here models
            # any failing index lookup, not just a failing build
            self.injector.fire("registry.get", fingerprint=fingerprint,
                               structure=structure)
        key = IndexKey.make(fingerprint, structure, **params)
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self.hits += 1
                return entry
            self.misses += 1
            lines = self.dataset(fingerprint)
            dom = self._domains[fingerprint]
        # load / build outside the lock: builds are deterministic, so a
        # racing duplicate wastes work but never yields a wrong entry.
        # The arena tier comes first: for a *repaired* index published
        # by a mutation commit it holds the exact pages the workers
        # map, so an evicted parent entry reloads the same cuts the
        # fan-out plan must agree with -- a rebuild here could not
        # guarantee that
        if self.arena is not None:
            entry = self._rehydrate_from_arena(key, lines)
            if entry is not None:
                self._insert(entry)
                return entry
        if self.store is not None:
            probe = self.store.get(key)
            if probe is not None:
                tree, manifest = probe
                entry = BuiltIndex(
                    key, tree,
                    float(manifest.get("build_steps", 0.0)),
                    int(manifest.get("build_primitives", 0)),
                    int(manifest.get("num_lines", lines.shape[0])))
                with self._lock:
                    self.disk_hits += 1
                self._insert(entry)
                return entry
        entry = self._repair_from_parent(key, lines, dom, params)
        if entry is None:
            machine = Machine()
            with use_machine(machine):
                tree = self.BUILDERS[structure](lines, dom, **params)
            entry = BuiltIndex(key, tree, machine.steps,
                               machine.total_primitives,
                               int(lines.shape[0]))
        self._insert(entry)
        return entry

    def _repair_from_parent(self, key: IndexKey, lines: np.ndarray,
                            dom: int, params: Dict) -> Optional[BuiltIndex]:
        """Incremental build from the parent version's cached shards.

        Applies only when this fingerprint is a committed mutation of a
        parent whose *same-key* sharded index is still in the memory
        tier -- then only the curve ranges the mutation touched are
        rebuilt.  Any miss in that chain of conditions (no hint, parent
        evicted, unsharded key, repair disabled) returns ``None`` and
        the caller pays the canonical build.
        """
        if not self.repair_enabled or int(params.get("shards", 1)) <= 1:
            return None
        with self._lock:
            hint = self._repair_hints.get(key.fingerprint)
            if hint is None:
                return None
            parent_fp, del_ids, n_inserted = hint
            parent = self._cache.get(
                IndexKey.make(parent_fp, key.structure, **params))
        if parent is None or not isinstance(parent.tree, ShardedIndex):
            return None
        machine = Machine()
        try:
            with use_machine(machine):
                tree, rstats = repair_sharded(
                    parent.tree, lines, del_ids, n_inserted,
                    shards=int(params["shards"]),
                    capacity=int(params.get("capacity", 8)),
                    min_fill=int(params.get("min_fill", 2)),
                    max_depth=params.get("max_depth"),
                    domain=float(dom))
        except Exception:
            return None   # any surprise falls back to the canonical build
        with self._lock:
            self.repairs += 1
            if rstats["full_rebuild"]:
                self.repair_full_rebuilds += 1
        return BuiltIndex(key, tree, machine.steps,
                          machine.total_primitives, int(lines.shape[0]),
                          repaired_from=parent_fp, repair=rstats)

    def _rehydrate_from_arena(self, key: IndexKey,
                              lines: np.ndarray) -> Optional[BuiltIndex]:
        """Reload an evicted index from its own published arena payload.

        The rebuilt tree's arrays alias the mapped shared pages, so the
        attachment is pinned on the tree object to keep the mapping
        alive for the tree's lifetime.  Any failure (block gone, bad
        checksum) returns ``None`` and the caller falls through to the
        store / build tiers.
        """
        handle = self.arena.handle(INDEX_PREFIX + store_key_id(key))
        if handle is None:
            return None
        try:
            att = attach_payload(handle)
            tree = payload_to_tree(att.value)
        except Exception:  # noqa: BLE001 - degrade to store/build
            return None
        try:
            tree._shm_attachment = att
        except AttributeError:
            return None   # slotted tree type: cannot pin, do not risk it
        with self._lock:
            self.shm_rehydrations += 1
        return BuiltIndex(key, tree, 0.0, 0, int(lines.shape[0]))

    def peek(self, key: IndexKey) -> Optional[BuiltIndex]:
        """Memory-tier lookup without miss accounting, LRU touch, or
        build -- what the adaptive controller's balance watchdog reads
        (an index nobody keeps warm is not worth rebalancing)."""
        with self._lock:
            return self._cache.get(key)

    def discard(self, key: IndexKey) -> bool:
        """Drop one memory-tier entry (no store/arena side effects).

        The commit path uses this to retract a repaired tree it could
        not make worker-visible before rebuilding canonically.
        """
        with self._lock:
            return self._cache.pop(key, None) is not None

    def drop_repair_hint(self, fingerprint: str) -> None:
        """Forget a staged version's repair lineage so the next
        :meth:`get` pays the canonical build instead of a repair."""
        with self._lock:
            self._repair_hints.pop(fingerprint, None)

    def _insert(self, entry: BuiltIndex) -> None:
        """Admit one entry to the memory tier, spilling any evictees.

        The spill happens under the registry lock so an eviction can
        never interleave with :meth:`invalidate` deleting the same
        fingerprint's store entries and resurrect a doomed index.
        """
        with self._lock:
            self._cache[entry.key] = entry
            self._cache.move_to_end(entry.key)
            while len(self._cache) > self.capacity:
                _, victim = self._cache.popitem(last=False)
                self.evictions += 1
                if self.store is not None:
                    try:
                        self.store.put(victim.key, victim.tree,
                                       build_steps=victim.build_steps,
                                       build_primitives=victim.build_primitives,
                                       num_lines=victim.num_lines)
                        self.spills += 1
                    except (OSError, InjectedFault):
                        pass   # disk full / unwritable: plain eviction

    def persist(self, fingerprint: str, structure: str, **params) -> str:
        """Build (or fetch) an index and write it to the store now.

        The warm-up hook behind ``repro store prefetch``: unlike the
        spill-on-evict path this writes unconditionally, so a cache
        directory can be seeded ahead of serving.  Returns the archive
        path.
        """
        if self.store is None:
            raise RuntimeError("no IndexStore attached to this registry")
        entry = self.get(fingerprint, structure, **params)
        return self.store.put(entry.key, entry.tree,
                              build_steps=entry.build_steps,
                              build_primitives=entry.build_primitives,
                              num_lines=entry.num_lines)

    def spill_all(self) -> int:
        """Spill every in-memory index not already on disk; returns count.

        Called on engine shutdown so the next process warm-starts from
        the store instead of rebuilding.
        """
        if self.store is None:
            return 0
        with self._lock:
            entries = list(self._cache.values())
        n = 0
        for entry in entries:
            if self.store.contains(entry.key):
                continue   # deterministic content: the bytes match
            try:
                self.store.put(entry.key, entry.tree,
                               build_steps=entry.build_steps,
                               build_primitives=entry.build_primitives,
                               num_lines=entry.num_lines)
            except (OSError, InjectedFault):
                continue
            with self._lock:
                self.spills += 1
            n += 1
        return n

    def invalidate(self, fingerprint: Optional[str] = None) -> int:
        """Drop cached indexes (all of them, or one dataset's); returns count.

        This is the hook :mod:`repro.structures.dynamic` updates call
        through -- after an insert/delete the old fingerprint's trees
        must never be served again.  Both tiers are covered: the store's
        entries for the fingerprint are deleted too, so a disk probe can
        never resurrect a stale tree.
        """
        with self._lock:
            if fingerprint is None:
                n = len(self._cache)
                self._cache.clear()
            else:
                doomed = [k for k in self._cache if k.fingerprint == fingerprint]
                for k in doomed:
                    del self._cache[k]
                n = len(doomed)
            self.invalidations += n
            if self.store is not None:
                if fingerprint is None:
                    self.store.clear()
                else:
                    self.store.delete_fingerprint(fingerprint)
            if self.arena is not None:
                # stale index payloads must never be mapped again; the
                # dataset block (if any) is handled by _collect/forget
                self.arena.release_indexes(fingerprint)
            return n

    def apply_update(self, fingerprint: str,
                     update: Callable[[np.ndarray], np.ndarray]) -> str:
        """Apply a dataset update and invalidate the stale indexes.

        ``update`` maps the old segment array to the new one (e.g. a
        vstack for inserts, a row selection for deletes -- the canonical
        rebuild semantics of :mod:`repro.structures.dynamic`).  Returns
        the new fingerprint.
        """
        old = self.dataset(fingerprint)
        new_fp = self.register(update(old))
        self.invalidate(fingerprint)
        return new_fp

    def insert_lines(self, fingerprint: str, new_lines: np.ndarray) -> str:
        """Append segments as a new chain version; returns its fingerprint.

        Lazy (:meth:`mutate`): nothing is built or invalidated here,
        and the previous version keeps serving until retention GC.
        """
        return self.mutate(fingerprint, insert=new_lines).fingerprint

    def delete_lines(self, fingerprint: str, ids) -> str:
        """Remove segments by current-version id; returns the new
        chain version's fingerprint (lazy, like :meth:`insert_lines`)."""
        return self.mutate(fingerprint, delete_ids=ids).fingerprint

    # -- stats -----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            total = self.hits + self.misses
            out = {
                "datasets": float(len(self._datasets)),
                "cached_indexes": float(len(self._cache)),
                "capacity": float(self.capacity),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "hit_rate": (self.hits / total) if total else 0.0,
                "evictions": float(self.evictions),
                "invalidations": float(self.invalidations),
                "spills": float(self.spills),
                "disk_hits": float(self.disk_hits),
                "repairs": float(self.repairs),
                "repair_full_rebuilds": float(self.repair_full_rebuilds),
                "shm_rehydrations": float(self.shm_rehydrations),
                "versions_committed": float(self.versions_committed),
                "versions_collected": float(self.versions_collected),
                "versions_retained": float(self.versions_retained),
                "pinned_versions": float(len(self._pins)),
            }
        if self.store is not None:
            out["store"] = self.store.snapshot()
        return out

    def cached_keys(self):
        """LRU-ordered cache keys, oldest first (for tests/introspection)."""
        with self._lock:
            return list(self._cache)


# ``gen`` is the online re-shard generation: it never changes what is
# built (the canonical cut of (data, shards, ordering) is unique), only
# the cache/store/arena *key*, so a rebalance mints fresh entries in
# every tier instead of colliding with the old decomposition


def _build_pmr(lines, domain, capacity: int = 8, max_depth=None,
               shards: int = 1, ordering: str = "morton", gen: int = 0):
    if int(shards) > 1:
        return build_sharded(lines, domain, structure="pmr", shards=shards,
                             ordering=ordering, capacity=capacity,
                             max_depth=max_depth)
    tree, _ = build_bucket_pmr(lines, domain, capacity, max_depth=max_depth)
    return tree


def _build_pm1(lines, domain, max_depth=None,
               shards: int = 1, ordering: str = "morton", gen: int = 0):
    if int(shards) > 1:
        return build_sharded(lines, domain, structure="pm1", shards=shards,
                             ordering=ordering, max_depth=max_depth)
    tree, _ = build_pm1(lines, domain, max_depth=max_depth)
    return tree


def _build_rtree(lines, domain, min_fill: int = 2, capacity: int = 8,
                 shards: int = 1, ordering: str = "morton", gen: int = 0):
    # domain is irrelevant to the R-tree itself but keys the shard cut
    if int(shards) > 1:
        return build_sharded(lines, domain, structure="rtree", shards=shards,
                             ordering=ordering, capacity=capacity,
                             min_fill=min_fill)
    tree, _ = build_rtree(lines, min_fill, capacity)
    return tree


IndexRegistry.BUILDERS = {
    "pmr": _build_pmr,
    "pm1": _build_pm1,
    "rtree": _build_rtree,
}
