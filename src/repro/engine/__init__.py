"""Concurrent batched spatial query engine (the serving layer).

Turns the one-shot builders and the data-parallel batch queries into a
serving stack: an index registry with an LRU cache, a request
coalescer, a bounded worker pool, and an engine-stats layer.  See
:mod:`repro.engine.engine` for the composition and README's "Serving
queries with repro.engine" for a tour.
"""

from ..errors import EngineError
from ..resilience import (CircuitBreaker, CircuitOpenError, FaultInjector,
                          FaultPlan, FaultSpec, InjectedCorruption,
                          InjectedFault, InjectedWorkerCrash, PartialResult,
                          RetryPolicy)
from .adaptive import (AdaptiveController, CoalescerTuner, SkewWatch,
                       probe_shard_params)
from .coalescer import Coalescer, Probe
from .engine import EngineConfig, SpatialQueryEngine
from .executor import (BoundedExecutor, ExecutorBackend, JobTimeoutError,
                       ProcessBackend, RejectedError, WorkerCrashError)
from .registry import BuiltIndex, IndexKey, IndexRegistry, dataset_fingerprint
from .stats import EngineStats, LatencyReservoir
from .worker import IndexRef, JobSpec, NeedDataset, WorkerResult

__all__ = [
    "SpatialQueryEngine",
    "EngineConfig",
    "IndexRegistry",
    "IndexKey",
    "BuiltIndex",
    "dataset_fingerprint",
    "Coalescer",
    "Probe",
    "AdaptiveController",
    "CoalescerTuner",
    "SkewWatch",
    "probe_shard_params",
    "BoundedExecutor",
    "ProcessBackend",
    "ExecutorBackend",
    "IndexRef",
    "JobSpec",
    "WorkerResult",
    "NeedDataset",
    "EngineError",
    "RejectedError",
    "WorkerCrashError",
    "JobTimeoutError",
    "InjectedWorkerCrash",
    "CircuitBreaker",
    "CircuitOpenError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedCorruption",
    "PartialResult",
    "RetryPolicy",
    "EngineStats",
    "LatencyReservoir",
]
