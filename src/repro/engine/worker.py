"""Process-pool worker: shared-nothing index serving over picklable jobs.

The process backend never ships a built tree across the process
boundary.  A job crosses as a :class:`JobSpec` -- fingerprint-addressed
:class:`IndexRef`\\ s plus a small query array and (with the
shared-memory data plane enabled) a tuple of picklable
:class:`~repro.shm.ShmHandle`\\ s -- and each worker process lazily
**materialises** the indexes it is asked about, in priority order:

1. its own in-process cache (keyed by :func:`repro.store.store_key_id`,
   the same stem the disk store uses),
2. a published index payload block named by a ``ix:`` handle on the
   spec: the worker maps the parent's prebuilt payload zero-copy and
   rebuilds the tree *in place* over the shared pages,
3. the persistent :class:`~repro.store.IndexStore` opened *read-only*
   (the warm path: the parent engine spilled or prefetched the index),
4. a deterministic rebuild from the dataset -- preferentially the
   zero-copy array mapped from a ``ds:`` handle (attached once per
   worker, shared pages, no pipe bytes), else a shipped snapshot; if
   the worker has neither it raises :class:`NeedDataset`, the parent
   attaches ``(fingerprint, lines, domain)`` to the spec and resubmits,
   so a dataset crosses the pipe **at most once per (worker,
   fingerprint)** and only when neither the arena nor the disk store
   can serve it.

Builds are pure functions of ``(dataset, structure, params)`` (the
registry invariant), so a worker-built tree is bit-identical to the
parent's and results cannot depend on which path materialised it.

Fault-site parity: the parent evaluates ``error``/``crash``/``corrupt``
specs at submit time (one global, deterministic schedule regardless of
which worker runs the job); ``latency``/``stall`` specs are evaluated
here, inside the worker, so a stalled shard delays only itself.  A spec
with ``crash=True`` makes the worker ``os._exit`` before touching the
job -- a real dead process, indistinguishable from a SIGKILL, which the
parent observes as ``BrokenProcessPool`` and handles with a pool
restart plus resubmission.

Everything in this module must stay importable without the engine
(workers import it standalone) and every type crossing the boundary
must pickle.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..baselines.brute import brute_point_query, brute_window_query
from ..machine import Machine, use_machine
from ..resilience import FaultInjector, FaultPlan
from ..shm import (DATASET_PREFIX, INDEX_PREFIX, Attachment, ShmHandle,
                   attach_array, attach_payload)
from ..store import IndexStore, store_key_id
from ..structures.io import payload_to_tree
from ..structures.batch import (
    batch_nearest_quadtree,
    batch_nearest_rtree,
    batch_point_query_quadtree,
    batch_point_query_rtree,
    batch_window_query_quadtree,
    batch_window_query_rtree,
)
from ..structures.join import brute_join, quadtree_join, rtree_join
from ..structures.nearest import brute_nearest
from ..structures.sharded import ShardedIndex, sharded_join
from .registry import IndexRegistry

__all__ = ["FAMILY", "IndexRef", "JobSpec", "WorkerResult", "NeedDataset",
           "batch_kernel", "run_job"]

#: structure name -> tree family used to pick the batch kernels
FAMILY = {"pmr": "quadtree", "pm1": "quadtree", "rtree": "rtree"}

#: fault kinds evaluated in the worker (the parent fires the rest)
WORKER_FAULT_KINDS = ("latency", "stall")


def _degenerate_rects(points) -> np.ndarray:
    """Zero-area windows ``[px, py, px, py]`` for a point batch."""
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    return np.column_stack([pts[:, 0], pts[:, 1], pts[:, 0], pts[:, 1]])


def batch_kernel(structure: str, kind: str, exact: bool):
    """The vectorized batch kernel for one (structure, kind) pair.

    Shared by the thread engine and the process workers so both
    backends run literally the same code path per batch.
    """
    family = FAMILY[structure]
    if kind == "window":
        if family == "quadtree":
            return lambda tree, v, m: batch_window_query_quadtree(
                tree, v, exact=exact, machine=m)
        return lambda tree, v, m: batch_window_query_rtree(
            tree, v, exact=exact, machine=m)
    if kind == "point":
        # point probes serve the decomposition-independent stabbing
        # contract (segments through the point, as degenerate exact
        # windows): an online re-shard -- or any other shard-layout
        # difference -- must never change an answer.  ``exact=False``
        # keeps the structure-native candidate semantics reachable
        # (quadtree: the leaf's residents, via batch_point_query_*).
        if family == "quadtree":
            if not exact:
                # out-of-domain points were rejected at submit time
                return lambda tree, v, m: batch_point_query_quadtree(
                    tree, v, strict=False, machine=m)
            return lambda tree, v, m: batch_window_query_quadtree(
                tree, _degenerate_rects(v), exact=True, machine=m)
        return lambda tree, v, m: batch_point_query_rtree(
            tree, v, exact=exact, machine=m)
    if family == "quadtree":
        return lambda tree, v, m: batch_nearest_quadtree(tree, v, machine=m)
    return lambda tree, v, m: batch_nearest_rtree(tree, v, machine=m)


@dataclass(frozen=True)
class IndexRef:
    """A fingerprint-addressed index reference -- the pickled stand-in
    for a built tree.  Duck-types the registry's ``IndexKey`` (same
    ``fingerprint``/``structure``/``params`` attributes), so the disk
    store derives the identical filename stem for both."""

    fingerprint: str
    structure: str
    params: Tuple[Tuple[str, object], ...]
    domain: int


@dataclass(frozen=True)
class JobSpec:
    """One unit of work crossing the process boundary.

    ``op`` selects the kernel: ``batch`` (one vectorized pass),
    ``shard`` (one per-shard sub-batch of a fan-out), ``join`` (a batch
    of dataset-pair joins; ``brute=True`` for the degraded scan),
    ``brute`` (degraded window/point/nearest batch), ``warm``
    (materialise only).  ``datasets`` carries ``(fingerprint, lines,
    domain)`` snapshots attached by the parent after a
    :class:`NeedDataset` round trip; ``handles`` carries the arena's
    shared-memory handles (``ds:`` dataset arrays and ``ix:`` index
    payloads -- a few hundred bytes each, mapped zero-copy in the
    worker); ``crash=True`` is the injected worker-kill used by chaos
    tests.
    """

    op: str
    kind: str = ""
    index: Optional[IndexRef] = None
    pairs: Tuple[Tuple[IndexRef, IndexRef], ...] = ()
    payloads: Optional[np.ndarray] = None
    exact: bool = True
    shard: int = -1
    datasets: Tuple[Tuple[str, np.ndarray, int], ...] = ()
    handles: Tuple[ShmHandle, ...] = ()
    crash: bool = False
    brute: bool = False
    #: dataset chain version the job's index fingerprint was resolved
    #: at -- pinned so a worker's accounting and any future
    #: version-aware materialisation can name the snapshot it served
    version: int = -1


@dataclass(frozen=True)
class WorkerResult:
    """A job's answer plus the worker-side accounting that rides along.

    ``faults`` lists the (site, kind) pairs the worker-side injector
    fired during this job (the parent replays them into its stats);
    ``warm_loads``/``cold_builds`` count index materialisations done
    *for this job*; ``shm_attached`` names the arena tags this job
    newly mapped (the parent folds them into per-block attach counts);
    ``jobs``/``cached_trees`` are the worker's running totals, keyed
    by ``pid`` in the parent's per-worker map.
    """

    values: object
    steps: float
    primitives: int
    pid: int
    faults: Tuple[Tuple[str, str], ...] = ()
    warm_loads: int = 0
    cold_builds: int = 0
    jobs: int = 0
    cached_trees: int = 0
    shm_attached: Tuple[str, ...] = ()


class NeedDataset(Exception):
    """The worker lacks these datasets and the store could not help.

    The parent catches this, attaches the registry's snapshots to the
    spec, and resubmits -- one round trip per (worker, fingerprint),
    and none at all when the disk store already holds the index.
    """

    def __init__(self, fingerprints):
        self.fingerprints = tuple(fingerprints)
        super().__init__(
            f"worker {os.getpid()} needs dataset(s) "
            f"{', '.join(self.fingerprints)}")

    def __reduce__(self):
        return (NeedDataset, (self.fingerprints,))


@dataclass
class _WorkerState:
    """Per-process caches and counters (module-global, one per worker)."""

    store: Optional[IndexStore]
    injector: Optional[FaultInjector]
    trees: Dict[str, object] = field(default_factory=dict)
    datasets: Dict[str, Tuple[np.ndarray, int]] = field(default_factory=dict)
    #: live shared-memory mappings by arena tag -- held for the worker's
    #: lifetime so the views handed to kernels stay valid
    attachments: Dict[str, Attachment] = field(default_factory=dict)
    #: index payload handles seen on specs, by store key id
    payload_handles: Dict[str, ShmHandle] = field(default_factory=dict)
    #: arena tags newly attached during the current job
    job_attached: List[str] = field(default_factory=list)
    fired: List[Tuple[str, str]] = field(default_factory=list)
    jobs: int = 0
    job_warm: int = 0
    job_cold: int = 0


_STATE: Optional[_WorkerState] = None


def _init_worker(cache_dir: Optional[str],
                 fault_plan: Optional[FaultPlan]) -> None:
    """Process-pool initializer: build this worker's state once.

    The store is opened read-only -- workers never spill, refresh
    mtimes, or quarantine, so the parent's GC/shutdown spill stays the
    single writer.  The injector evaluates only the sleep kinds (see
    module docstring).
    """
    global _STATE
    state = _WorkerState(
        store=(IndexStore(cache_dir, readonly=True)
               if cache_dir is not None else None),
        injector=None)
    if fault_plan is not None and fault_plan.specs:
        state.injector = FaultInjector(
            fault_plan, observer=lambda s, k: state.fired.append((s, k)))
    _STATE = state


def _register_handle(state: _WorkerState, handle: ShmHandle) -> None:
    """Note one arena handle: map ``ds:`` blocks now, ``ix:`` lazily.

    Dataset arrays are attached eagerly (one mapping per worker, reused
    by every later job); index payloads are only recorded here and
    mapped on first use in :func:`_materialize`.  Any attach failure --
    the parent released the block between pickling the spec and the
    worker opening it -- falls through silently to the store / rebuild
    / :class:`NeedDataset` paths, which remain correct without shm.
    """
    if handle.tag.startswith(DATASET_PREFIX):
        fingerprint = handle.tag[len(DATASET_PREFIX):]
        if fingerprint in state.datasets:
            return
        try:
            att = attach_array(handle)
        except Exception:  # noqa: BLE001 - degrade to the ship path
            return
        state.attachments[handle.tag] = att
        domain = int(float(handle.meta_dict().get("domain", "0")))
        state.datasets[fingerprint] = (att.value, domain)
        state.job_attached.append(handle.tag)
    elif handle.tag.startswith(INDEX_PREFIX):
        state.payload_handles.setdefault(
            handle.tag[len(INDEX_PREFIX):], handle)


def _attach_tree(state: _WorkerState, key_id: str,
                 handle: ShmHandle):
    """Map an ``ix:`` payload block and rebuild its tree in place.

    The tree's arrays alias the shared pages -- a warm load with zero
    copies and zero pipe bytes.  Returns ``None`` (and forgets the
    handle) if the block is gone or fails verification.
    """
    try:
        att = attach_payload(handle)
        tree = payload_to_tree(att.value)
    except Exception:  # noqa: BLE001 - degrade to store/rebuild
        state.payload_handles.pop(key_id, None)
        return None
    state.attachments[handle.tag] = att
    state.job_attached.append(handle.tag)
    return tree


def _materialize(state: _WorkerState, ref: IndexRef):
    """Cache -> shm payload -> read-only store -> rebuild, in that order."""
    key_id = store_key_id(ref)
    tree = state.trees.get(key_id)
    if tree is not None:
        return tree
    handle = state.payload_handles.get(key_id)
    if handle is not None:
        tree = _attach_tree(state, key_id, handle)
        if tree is not None:
            state.trees[key_id] = tree
            state.job_warm += 1
            return tree
    if state.store is not None:
        probe = state.store.get(ref)
        if probe is not None:
            tree = probe[0]
            state.trees[key_id] = tree
            state.job_warm += 1
            return tree
    snap = state.datasets.get(ref.fingerprint)
    if snap is None:
        raise NeedDataset((ref.fingerprint,))
    lines, domain = snap
    builder = IndexRegistry.BUILDERS[ref.structure]
    tree = builder(lines, domain, **dict(ref.params))
    state.trees[key_id] = tree
    state.job_cold += 1
    return tree


def _dataset(state: _WorkerState, ref: IndexRef) -> np.ndarray:
    snap = state.datasets.get(ref.fingerprint)
    if snap is None:
        raise NeedDataset((ref.fingerprint,))
    return snap[0]


def _preflight(state: _WorkerState, spec: JobSpec) -> None:
    """Raise one :class:`NeedDataset` naming *every* missing dataset.

    Checked before any kernel runs so a join over N pairs costs at most
    one ship round trip instead of N.
    """
    missing: List[str] = []

    def need_tree(ref: IndexRef) -> None:
        key_id = store_key_id(ref)
        if key_id in state.trees:
            return
        if key_id in state.payload_handles:
            return
        if state.store is not None and state.store.contains(ref):
            return
        if ref.fingerprint not in state.datasets \
                and ref.fingerprint not in missing:
            missing.append(ref.fingerprint)

    def need_lines(ref: IndexRef) -> None:
        if ref.fingerprint not in state.datasets \
                and ref.fingerprint not in missing:
            missing.append(ref.fingerprint)

    if spec.op in ("batch", "shard", "warm"):
        need_tree(spec.index)
    elif spec.op == "brute":
        need_lines(spec.index)
    elif spec.op == "join":
        for ref_a, ref_b in spec.pairs:
            if spec.brute:
                need_lines(ref_a)
                need_lines(ref_b)
            else:
                need_tree(ref_a)
                need_tree(ref_b)
    if missing:
        raise NeedDataset(missing)


def _op_batch(state: _WorkerState, spec: JobSpec, machine: Machine):
    tree = _materialize(state, spec.index)
    fn = batch_kernel(spec.index.structure, spec.kind, spec.exact)
    return fn(tree, spec.payloads, machine)


def _op_shard(state: _WorkerState, spec: JobSpec, machine: Machine):
    sharded: ShardedIndex = _materialize(state, spec.index)
    return sharded.query_shard_batch(
        spec.shard, spec.kind, spec.payloads, exact=spec.exact,
        machine=machine, flat=spec.kind != "nearest")


def _op_join(state: _WorkerState, spec: JobSpec, machine: Machine):
    """A batch of joins: per-pair ``("ok", pairs)`` / ``("err", exc)``.

    Per-pair outcomes (not one shared exception) so one failing pair
    cannot poison the other joins coalesced into the same job -- the
    parent feeds each outcome to its own fingerprints' breakers.
    """
    out = []
    for ref_a, ref_b in spec.pairs:
        try:
            if spec.brute:
                pairs = brute_join(_dataset(state, ref_a),
                                   _dataset(state, ref_b))
            else:
                ta = _materialize(state, ref_a)
                tb = _materialize(state, ref_b)
                if isinstance(ta, ShardedIndex) or isinstance(tb, ShardedIndex):
                    pairs = sharded_join(ta, tb)
                else:
                    join = (rtree_join if FAMILY[ref_a.structure] == "rtree"
                            else quadtree_join)
                    pairs = join(ta, tb)
        except NeedDataset:
            raise
        except Exception as exc:  # noqa: BLE001 - outcome, not control flow
            out.append(("err", exc))
        else:
            out.append(("ok", pairs))
    return out


def _op_brute(state: _WorkerState, spec: JobSpec, machine: Machine):
    lines = _dataset(state, spec.index)
    if spec.kind == "window":
        return [brute_window_query(lines, r) for r in spec.payloads]
    if spec.kind == "point":
        return [brute_point_query(lines, float(p[0]), float(p[1]))
                for p in spec.payloads]
    return [brute_nearest(lines, float(p[0]), float(p[1]))
            for p in spec.payloads]


def _op_warm(state: _WorkerState, spec: JobSpec, machine: Machine):
    _materialize(state, spec.index)
    return None


_OPS = {"batch": _op_batch, "shard": _op_shard, "join": _op_join,
        "brute": _op_brute, "warm": _op_warm}


def run_job(spec: JobSpec) -> WorkerResult:
    """Entry point the parent submits to the pool; runs in the worker."""
    state = _STATE
    if state is None:  # pool built without the initializer (tests)
        _init_worker(None, None)
        state = _STATE
    if spec.crash:
        # injected worker kill: a real dead process, not an exception.
        # _exit skips atexit/finalizers exactly like a SIGKILL would.
        os._exit(1)
    state.jobs += 1
    state.job_warm = state.job_cold = 0
    state.fired = []
    state.job_attached = []
    for handle in spec.handles:
        _register_handle(state, handle)
    for fp, lines, domain in spec.datasets:
        if fp not in state.datasets:
            arr = np.ascontiguousarray(
                np.asarray(lines, dtype=np.float64).reshape(-1, 4))
            arr.setflags(write=False)
            state.datasets[fp] = (arr, int(domain))
    _preflight(state, spec)
    machine = Machine()
    with use_machine(machine):
        if state.injector is not None:
            state.injector.fire("executor.job",
                                only_kinds=WORKER_FAULT_KINDS)
            if spec.op == "shard":
                state.injector.fire("shard.query",
                                    only_kinds=WORKER_FAULT_KINDS,
                                    shard=spec.shard, kind=spec.kind)
        values = _OPS[spec.op](state, spec, machine)
    return WorkerResult(values=values, steps=machine.steps,
                        primitives=machine.total_primitives,
                        pid=os.getpid(), faults=tuple(state.fired),
                        warm_loads=state.job_warm,
                        cold_builds=state.job_cold,
                        jobs=state.jobs, cached_trees=len(state.trees),
                        shm_attached=tuple(state.job_attached))
