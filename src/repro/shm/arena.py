"""Fingerprint-keyed shared-memory arena: publish once, map everywhere.

The process backend's locality problem is that every worker otherwise
receives its own pickled copy of a dataset snapshot over the pool's
pipe (~2.2 MB × workers for a 10k-segment map, linear in dataset
size).  The arena replaces those copies with **one** OS-level
``multiprocessing.shared_memory`` block per published object; jobs then
carry only a :class:`ShmHandle` -- ``(name, shape, dtype, checksum)``
plus a tag -- and every worker maps the same physical pages read-only.

Two block kinds:

* ``array`` -- a single C-contiguous ndarray (the canonical segment
  array of one dataset fingerprint).  :func:`attach_array` returns a
  zero-copy read-only view.
* ``payload`` -- a packed multi-array archive (the store's prebuilt
  index payload: the same entries io format v3 would write, laid out
  uncompressed at 64-byte-aligned offsets behind a JSON header).
  :func:`attach_payload` returns a dict of zero-copy views, from which
  :func:`repro.structures.io.payload_to_tree` rebuilds the tree *in
  place* -- the tree's arrays alias the shared pages.

Lifecycle and crash safety:

* The parent **owns** every block: :meth:`ShmArena.close` unlinks them
  all, and a ``weakref.finalize`` guard does the same if the arena is
  garbage-collected unclosed, so a normal exit never leaks and never
  triggers a resource-tracker warning.
* A **session registry** file (``$TMPDIR/repro-shm/session-<pid>-*.json``)
  lists the live block names.  A parent killed outright (SIGKILL, power
  loss) leaves the file behind; the next arena construction reconciles:
  any session whose pid is dead has its listed blocks unlinked.  This is
  the reconciliation layer on top of the stdlib resource tracker.
* Workers attach **untracked** (:func:`attach_untracked`): before
  Python 3.13 an attaching process re-registers the block with its
  resource tracker, which would unlink it -- and warn -- when that
  worker exits (bpo-39959).  Suppressing the attach-side registration
  keeps ownership solely with the parent; a worker killed mid-job
  (``os._exit``) therefore cannot leak or double-free anything.

Budget: ``budget_bytes`` caps the total published bytes.  A publish
that would exceed it returns ``None`` (counted in
``publish_failures``) and the caller falls back to the pipe-shipping
path -- degraded throughput, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import struct
import tempfile
import threading
import weakref
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np
from multiprocessing import resource_tracker, shared_memory

__all__ = ["DATASET_PREFIX", "INDEX_PREFIX", "ShmHandle", "ShmArena",
           "Attachment", "ShmIntegrityError", "attach_untracked",
           "attach_array", "attach_payload", "reconcile_stale_sessions"]

#: arena tag prefixes: one namespace per published object class
DATASET_PREFIX = "ds:"     # + dataset fingerprint
INDEX_PREFIX = "ix:"       # + store key_id (fingerprint-structure-digest)

#: payload blocks align every entry so attached views can be vectorized
_ALIGN = 64

#: payload header: little-endian u64 byte length, then the JSON entries
_HEADER_LEN = struct.Struct("<Q")


class ShmIntegrityError(ValueError):
    """An attached block failed its handle's checksum."""


def _canon(arr) -> np.ndarray:
    """C-contiguous view/copy that preserves 0-d shapes.

    ``np.ascontiguousarray`` promotes 0-d arrays (the string tags of
    io-v3 payloads) to 1-d, which would corrupt the round trip.
    """
    arr = np.asarray(arr)
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    return arr


def _checksum(buf) -> str:
    """SHA-256 (truncated) over raw block bytes -- what handles carry."""
    h = hashlib.sha256()
    h.update(bytes(buf) if not isinstance(buf, (bytes, memoryview)) else buf)
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class ShmHandle:
    """The picklable stand-in for one published block.

    ``name`` is the OS-level shared-memory name (what workers attach
    by); ``tag`` is the arena key (``ds:<fingerprint>`` or
    ``ix:<key_id>``); ``checksum`` covers the first ``nbytes`` of the
    block so an attacher can verify it maps the bytes the publisher
    wrote.  ``shape``/``dtype`` describe ``array`` blocks; ``payload``
    blocks carry their layout in an embedded header instead.  ``meta``
    is a small string-pair tuple (e.g. a dataset's domain).
    """

    name: str
    tag: str
    kind: str                      # "array" | "payload"
    nbytes: int
    checksum: str
    shape: Tuple[int, ...] = ()
    dtype: str = ""
    meta: Tuple[Tuple[str, str], ...] = ()

    def meta_dict(self) -> Dict[str, str]:
        return dict(self.meta)


# -- worker-side attachment ------------------------------------------------


def attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker ownership.

    Pre-3.13 ``SharedMemory(name=...)`` registers the segment with the
    attaching process's resource tracker, which unlinks it (with a leak
    warning) when that process exits -- wrong for blocks the parent
    owns.  On 3.13+ ``track=False`` expresses this directly; earlier,
    the registration is suppressed for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    orig = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig


@dataclass
class Attachment:
    """One mapped block: the SharedMemory keeps the views' buffer alive."""

    handle: ShmHandle
    shm: shared_memory.SharedMemory
    value: object                  # ndarray (array) | dict of ndarrays

    def close(self) -> None:
        """Drop this process's mapping (never unlinks -- parent owns)."""
        self.value = None
        try:
            self.shm.close()
        except (OSError, BufferError):
            pass


def _verify(shm: shared_memory.SharedMemory, handle: ShmHandle) -> None:
    got = _checksum(shm.buf[:handle.nbytes])
    if got != handle.checksum:
        shm.close()
        raise ShmIntegrityError(
            f"block {handle.name!r} ({handle.tag}) checksum mismatch: "
            f"published {handle.checksum}, mapped {got}")


def attach_array(handle: ShmHandle, verify: bool = True) -> Attachment:
    """Map an ``array`` block as a read-only zero-copy ndarray."""
    if handle.kind != "array":
        raise ValueError(f"handle {handle.tag!r} is not an array block")
    shm = attach_untracked(handle.name)
    if verify:
        _verify(shm, handle)
    arr = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                     buffer=shm.buf)
    arr.setflags(write=False)
    return Attachment(handle=handle, shm=shm, value=arr)


def attach_payload(handle: ShmHandle, verify: bool = True) -> Attachment:
    """Map a ``payload`` block as a dict of read-only zero-copy views."""
    if handle.kind != "payload":
        raise ValueError(f"handle {handle.tag!r} is not a payload block")
    shm = attach_untracked(handle.name)
    if verify:
        _verify(shm, handle)
    hlen, = _HEADER_LEN.unpack_from(shm.buf, 0)
    entries = json.loads(bytes(shm.buf[_HEADER_LEN.size:
                                       _HEADER_LEN.size + hlen]).decode())
    out: Dict[str, np.ndarray] = {}
    for ent in entries:
        arr = np.ndarray(tuple(ent["shape"]), dtype=np.dtype(ent["dtype"]),
                         buffer=shm.buf, offset=int(ent["offset"]))
        arr.setflags(write=False)
        out[ent["key"]] = arr
    return Attachment(handle=handle, shm=shm, value=out)


def attach(handle: ShmHandle, verify: bool = True) -> Attachment:
    """Kind-dispatching attach (array or payload)."""
    if handle.kind == "array":
        return attach_array(handle, verify=verify)
    return attach_payload(handle, verify=verify)


# -- payload packing -------------------------------------------------------


def _pack_layout(arrays: Mapping[str, np.ndarray]):
    """Plan a payload block: (header bytes, entry offsets, total size)."""
    entries = []
    canon: Dict[str, np.ndarray] = {}
    for key in sorted(arrays):
        arr = _canon(arrays[key])
        canon[key] = arr
        entries.append({"key": key, "dtype": arr.dtype.str,
                        "shape": list(arr.shape), "nbytes": arr.nbytes})
    # offsets depend on the header length, which depends on the offsets'
    # digit count -- iterate to the fixed point (the length is weakly
    # increasing in itself, so this converges in a couple of rounds)
    header = json.dumps(entries, separators=(",", ":")).encode()
    for _ in range(8):
        cursor = _HEADER_LEN.size + len(header)
        for ent in entries:
            cursor = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
            ent["offset"] = cursor
            cursor += ent["nbytes"]
        new_header = json.dumps(entries, separators=(",", ":")).encode()
        if len(new_header) == len(header):
            header = new_header
            break
        header = new_header
    else:  # pragma: no cover - the fixed point is reached in practice
        raise ValueError("payload header layout did not converge")
    return canon, entries, header, cursor


# -- session registry (crash reconciliation) -------------------------------


def _registry_dir() -> str:
    return os.path.join(tempfile.gettempdir(), "repro-shm")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def reconcile_stale_sessions(registry_dir: Optional[str] = None) -> int:
    """Unlink blocks left behind by dead arena sessions; returns count.

    Every arena writes a session file naming its live blocks.  A parent
    that died without :meth:`ShmArena.close` (SIGKILL) leaves the file;
    this sweep -- run by every new arena, or standalone -- unlinks those
    blocks and removes the file.  Sessions whose pid is still alive are
    left alone.
    """
    rdir = registry_dir or _registry_dir()
    if not os.path.isdir(rdir):
        return 0
    cleaned = 0
    for fname in sorted(os.listdir(rdir)):
        if not (fname.startswith("session-") and fname.endswith(".json")):
            continue
        path = os.path.join(rdir, fname)
        try:
            with open(path) as fh:
                session = json.load(fh)
            pid = int(session.get("pid", -1))
            names = list(session.get("names", []))
        except (OSError, ValueError):
            continue
        if pid > 0 and _pid_alive(pid):
            continue
        for name in names:
            try:
                seg = attach_untracked(name)
            except FileNotFoundError:
                continue
            except OSError:
                continue
            try:
                seg.unlink()
            except (OSError, FileNotFoundError):
                pass
            seg.close()
            cleaned += 1
        try:
            os.unlink(path)
        except OSError:
            pass
    return cleaned


def _cleanup_session(owned: Dict[str, shared_memory.SharedMemory],
                     session_path: str) -> None:
    """Unlink every owned block (finalizer-safe: no arena reference)."""
    for shm in list(owned.values()):
        try:
            shm.unlink()
        except (OSError, FileNotFoundError):
            pass
        try:
            shm.close()
        except (OSError, BufferError):
            pass
    owned.clear()
    try:
        os.unlink(session_path)
    except OSError:
        pass


@dataclass
class _Block:
    handle: ShmHandle
    shm: shared_memory.SharedMemory
    live_attached: int = 0         # attachments reported by live workers
    attach_total: int = 0          # cumulative, survives pool restarts


class ShmArena:
    """Parent-owned registry of published shared-memory blocks.

    Thread-safe; all methods are cheap after the first publish of a
    tag (a dict lookup).  ``budget_bytes=None`` is unbounded; a publish
    that would exceed a finite budget returns ``None`` so callers fall
    back to pipe shipping.
    """

    def __init__(self, budget_bytes: Optional[int] = None,
                 registry_dir: Optional[str] = None,
                 reconcile: bool = True):
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self._blocks: Dict[str, _Block] = {}
        self._bytes = 0
        self.publishes = 0
        self.publish_failures = 0
        self.releases = 0
        self.attach_total = 0
        self._registry_dir = registry_dir or _registry_dir()
        os.makedirs(self._registry_dir, exist_ok=True)
        if reconcile:
            try:
                reconcile_stale_sessions(self._registry_dir)
            except OSError:
                pass
        self._session_path = os.path.join(
            self._registry_dir,
            f"session-{os.getpid()}-{secrets.token_hex(4)}.json")
        #: name -> SharedMemory, shared with the finalizer so unlink
        #: happens even if the arena is dropped without close()
        self._owned: Dict[str, shared_memory.SharedMemory] = {}
        self._write_session()
        self._finalizer = weakref.finalize(
            self, _cleanup_session, self._owned, self._session_path)
        self.closed = False

    # -- publishing ------------------------------------------------------

    def handle(self, tag: str) -> Optional[ShmHandle]:
        """The published handle for ``tag``, or ``None``."""
        with self._lock:
            block = self._blocks.get(tag)
            return block.handle if block is not None else None

    def publish_array(self, tag: str, arr: np.ndarray,
                      meta: Optional[Mapping[str, str]] = None
                      ) -> Optional[ShmHandle]:
        """Publish one ndarray under ``tag`` (idempotent per tag).

        Returns the handle, or ``None`` when the byte budget refuses
        the block (callers fall back to pipe shipping).
        """
        arr = _canon(arr)
        with self._lock:
            block = self._blocks.get(tag)
            if block is not None:
                return block.handle
            shm = self._create_locked(arr.nbytes)
            if shm is None:
                return None
            if arr.nbytes:
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
            handle = ShmHandle(
                name=shm.name, tag=tag, kind="array", nbytes=arr.nbytes,
                checksum=_checksum(shm.buf[:arr.nbytes]),
                shape=tuple(int(s) for s in arr.shape), dtype=arr.dtype.str,
                meta=tuple(sorted((str(k), str(v))
                           for k, v in (meta or {}).items())))
            self._admit_locked(tag, handle, shm)
            return handle

    def publish_payload(self, tag: str, arrays: Mapping[str, np.ndarray],
                        meta: Optional[Mapping[str, str]] = None
                        ) -> Optional[ShmHandle]:
        """Publish a multi-array payload (a prebuilt index) under ``tag``.

        The entries are laid out uncompressed behind a JSON header so
        :func:`attach_payload` can hand back zero-copy views -- the
        in-memory analogue of an io-v3 archive, minus the compression.
        """
        canon, entries, header, total = _pack_layout(arrays)
        with self._lock:
            block = self._blocks.get(tag)
            if block is not None:
                return block.handle
            shm = self._create_locked(total)
            if shm is None:
                return None
            _HEADER_LEN.pack_into(shm.buf, 0, len(header))
            shm.buf[_HEADER_LEN.size:_HEADER_LEN.size + len(header)] = header
            for ent in entries:
                arr = canon[ent["key"]]
                if not arr.nbytes:
                    continue
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf,
                                  offset=ent["offset"])
                view[...] = arr
            handle = ShmHandle(
                name=shm.name, tag=tag, kind="payload", nbytes=total,
                checksum=_checksum(shm.buf[:total]),
                meta=tuple(sorted((str(k), str(v))
                           for k, v in (meta or {}).items())))
            self._admit_locked(tag, handle, shm)
            return handle

    def _create_locked(self, nbytes: int
                       ) -> Optional[shared_memory.SharedMemory]:
        if self.closed:
            self.publish_failures += 1
            return None
        size = max(int(nbytes), 1)
        if self.budget_bytes is not None \
                and self._bytes + size > self.budget_bytes:
            self.publish_failures += 1
            return None
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=size,
                name=f"repro-{os.getpid()}-{secrets.token_hex(6)}")
        except OSError:
            self.publish_failures += 1
            return None
        return shm

    def _admit_locked(self, tag: str, handle: ShmHandle,
                      shm: shared_memory.SharedMemory) -> None:
        self._blocks[tag] = _Block(handle=handle, shm=shm)
        self._owned[shm.name] = shm
        self._bytes += shm.size
        self.publishes += 1
        self._write_session()

    # -- release / close -------------------------------------------------

    def release(self, tag: str) -> bool:
        """Unlink one block now; returns True if it existed.

        Workers already attached keep valid mappings (POSIX unlink
        removes the name, not the pages); new attaches fail and fall
        back to the store / rebuild / pipe path.
        """
        with self._lock:
            block = self._blocks.pop(tag, None)
            if block is None:
                return False
            self._owned.pop(block.shm.name, None)
            self._bytes -= block.shm.size
            self.releases += 1
            self._write_session()
        try:
            block.shm.unlink()
        except (OSError, FileNotFoundError):
            pass
        try:
            block.shm.close()
        except (OSError, BufferError):
            pass
        return True

    def release_fingerprint(self, fingerprint: str) -> int:
        """Drop a dataset's block and every index payload built from it."""
        return self._release_prefixes((DATASET_PREFIX + fingerprint,
                                       INDEX_PREFIX + fingerprint + "-"))

    def release_indexes(self, fingerprint: Optional[str] = None) -> int:
        """Drop index payload blocks (one dataset's, or all of them)."""
        prefix = (INDEX_PREFIX if fingerprint is None
                  else INDEX_PREFIX + fingerprint + "-")
        return self._release_prefixes((prefix,))

    def _release_prefixes(self, prefixes: Tuple[str, ...]) -> int:
        with self._lock:
            doomed = [t for t in self._blocks
                      if any(t == p or t.startswith(p) for p in prefixes)]
        return sum(self.release(tag) for tag in doomed)

    def close(self) -> None:
        """Unlink every block and retire the session file (idempotent)."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            self._blocks.clear()
            self._bytes = 0
        _cleanup_session(self._owned, self._session_path)
        self._finalizer.detach()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- attachment accounting -------------------------------------------

    def note_attaches(self, tags: Iterable[str]) -> None:
        """Fold worker-reported attachments into the per-block refcounts."""
        with self._lock:
            for tag in tags:
                self.attach_total += 1
                block = self._blocks.get(tag)
                if block is not None:
                    block.live_attached += 1
                    block.attach_total += 1

    def reset_live_attachments(self) -> None:
        """A pool restart dropped every worker mapping: zero the gauges."""
        with self._lock:
            for block in self._blocks.values():
                block.live_attached = 0

    # -- introspection ---------------------------------------------------

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "enabled": True,
                "blocks": len(self._blocks),
                "bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
                "publishes": self.publishes,
                "publish_failures": self.publish_failures,
                "releases": self.releases,
                "attach_total": self.attach_total,
                "tags": {tag: {"nbytes": b.handle.nbytes,
                               "kind": b.handle.kind,
                               "live_attached": b.live_attached,
                               "attach_total": b.attach_total}
                         for tag, b in self._blocks.items()},
            }

    def block_names(self):
        """OS-level names of the live blocks (tests probe these)."""
        with self._lock:
            return sorted(self._owned)

    def _write_session(self) -> None:
        try:
            tmp = self._session_path + ".tmp"
            with open(tmp, "w") as fh:
                json.dump({"pid": os.getpid(),
                           "names": sorted(self._owned)}, fh)
            os.replace(tmp, self._session_path)
        except OSError:
            pass
