"""Shared-memory data plane for the process backend.

:class:`ShmArena` publishes dataset segment arrays and prebuilt index
payloads into ``multiprocessing.shared_memory`` blocks keyed by
fingerprint, hands out picklable :class:`ShmHandle`\\ s, and guarantees
unlink-on-close (session-registry reconciliation covers even a crashed
parent).  Workers attach with :func:`attach_array` /
:func:`attach_payload` -- zero-copy read-only views over the same
physical pages, so per-job IPC bytes stay flat in dataset size.
"""

from .arena import (DATASET_PREFIX, INDEX_PREFIX, Attachment, ShmArena,
                    ShmHandle, ShmIntegrityError, attach_array,
                    attach_payload, attach_untracked,
                    reconcile_stale_sessions)

__all__ = ["DATASET_PREFIX", "INDEX_PREFIX", "Attachment", "ShmArena",
           "ShmHandle", "ShmIntegrityError", "attach_array",
           "attach_payload", "attach_untracked",
           "reconcile_stale_sessions"]
