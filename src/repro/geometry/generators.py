"""Seeded synthetic map generators.

The paper evaluates on line-segment maps (road, utility, railway maps)
it does not publish, plus small worked examples whose coordinates the
figures only show pictorially.  This module substitutes:

* :func:`paper_dataset` -- a reconstruction of the nine-segment worked
  example of Figure 1 on the 8x8 grid, engineered to satisfy every
  property the text states (segments labelled a-i; c, d and i share a
  common endpoint in the NW region; b and i cross the first split axes;
  endpoints of i force deep subdivision).  Tests assert those *stated
  properties*, not pixel geometry.
* :func:`pathological_pair` -- the Figure 2 construction: two segments
  whose near-coincident endpoints force the PM1 quadtree into deep
  subdivision, parameterised by separation.
* statistical map families (:func:`random_segments`, :func:`road_map`,
  :func:`clustered_map`, :func:`star_map`) standing in for the road /
  utility / railway maps the introduction motivates.

All generators take an integer ``domain`` (the side of the square space,
a power of two for quadtree use) and produce integer-valued coordinates
by default so that every geometric predicate in :mod:`repro.geometry`
evaluates exactly.  Randomness always flows through a caller-provided
seed; nothing reads a clock.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "paper_dataset",
    "paper_labels",
    "pathological_pair",
    "random_segments",
    "road_map",
    "clustered_map",
    "star_map",
    "rtree_split_example",
    "check_power_of_two",
]


def check_power_of_two(domain: int) -> int:
    """Validate a quadtree domain side; returns it as ``int``."""
    domain = int(domain)
    if domain < 1 or domain & (domain - 1):
        raise ValueError(f"domain must be a positive power of two, got {domain}")
    return domain


def paper_labels() -> list[str]:
    """Labels of the nine worked-example segments, in insertion order."""
    return list("abcdefghi")


def paper_dataset() -> np.ndarray:
    """The nine-segment worked example of Figure 1, on the 8x8 grid.

    Engineered properties (asserted by the test suite):

    * nine segments labelled a-i in rows 0-8;
    * **c, d, i share the common endpoint (1, 6)** in the NW quadrant
      (the paper's region A);
    * **b crosses both center axes** ``x = 4`` and ``y = 4`` so the first
      PM1 root split clones it;
    * **i spans from NW deep into SE**, crossing the center, so its two
      endpoints drive the max-depth subdivisions visible in Figure 4's
      bucket PMR (capacity 2, height 3);
    * every coordinate is an integer in ``[0, 8]``.
    """
    return np.array([
        [1.0, 3.0, 3.0, 5.0],   # a -- W side, crosses y=4 inside NW/SW
        [2.0, 2.0, 6.0, 5.0],   # b -- crosses both center axes
        [1.0, 6.0, 3.0, 7.0],   # c -- NW, shares (1,6)
        [1.0, 6.0, 3.0, 6.0],   # d -- NW, shares (1,6)
        [5.0, 6.0, 7.0, 7.0],   # e -- NE
        [5.0, 5.0, 6.0, 6.0],   # f -- NE
        [6.0, 2.0, 7.0, 3.0],   # g -- SE
        [5.0, 1.0, 6.0, 2.0],   # h -- SE
        [1.0, 6.0, 7.0, 1.0],   # i -- long diagonal, shares (1,6)
    ])


def pathological_pair(domain: int = 32, separation: int = 1) -> np.ndarray:
    """Figure 2's PM1 pathology: two segments with nearly-touching vertices.

    Segment ``a`` ends at the domain center-ish point ``p``; segment
    ``b`` starts ``separation`` cells to the right of ``p``.  The PM1
    splitting rule must subdivide until a block boundary falls between
    the two endpoints, i.e. to depth about ``log2(domain / separation)``;
    shrinking ``separation`` deepens the tree and multiplies empty
    nodes, which is the figure's point.
    """
    domain = check_power_of_two(domain)
    separation = int(separation)
    if not 1 <= separation < domain // 4:
        raise ValueError("separation must be in [1, domain/4)")
    c = domain // 2
    # Short diagonal stubs whose facing endpoints sit `separation` cells
    # apart just right of the center line: the blocks around the gap must
    # subdivide until a boundary falls between the endpoints, and because
    # the stubs are short most of the freshly created siblings are empty
    # -- Figure 2's "fifteen new nodes (eleven of which are empty)".
    ax, ay = c + 1, c + 1
    bx, by = ax + separation, c + 1
    reach = max(6, separation)
    return np.array([
        [float(ax - reach), float(ay + reach - 1), float(ax), float(ay)],
        [float(bx), float(by), float(bx + reach), float(by + reach - 1)],
    ])


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def random_segments(n: int, domain: int = 1024, max_len: int = 64,
                    seed=0) -> np.ndarray:
    """Uniformly placed random segments with bounded length.

    Endpoints are integers in ``[0, domain]``; zero-length rows are
    rejected and re-drawn.  A generic stand-in for the unstructured
    parts of a utility map.
    """
    rng = _rng(seed)
    domain = int(domain)
    if n < 0:
        raise ValueError("n must be non-negative")
    out = np.zeros((n, 4))
    remaining = np.arange(n)
    while remaining.size:
        m = remaining.size
        x1 = rng.integers(0, domain + 1, m)
        y1 = rng.integers(0, domain + 1, m)
        dx = rng.integers(-max_len, max_len + 1, m)
        dy = rng.integers(-max_len, max_len + 1, m)
        x2 = np.clip(x1 + dx, 0, domain)
        y2 = np.clip(y1 + dy, 0, domain)
        out[remaining] = np.column_stack([x1, y1, x2, y2]).astype(float)
        degenerate = (x1 == x2) & (y1 == y2)
        remaining = remaining[degenerate]
    return out


def road_map(rows: int = 8, cols: int = 8, domain: int = 1024,
             jitter: int = 8, drop: float = 0.1, seed=0) -> np.ndarray:
    """A grid-of-roads map: axis-aligned-ish polylines broken at crossings.

    ``rows`` horizontal and ``cols`` vertical roads are laid on an evenly
    spaced jittered grid; each road is emitted as unit spans between
    consecutive crossings, and a fraction ``drop`` of spans is removed to
    create dead ends.  Mimics the connectivity statistics of the street
    maps the paper's introduction cites.
    """
    rng = _rng(seed)
    domain = int(domain)
    ys = np.sort(rng.choice(np.arange(1, domain), size=rows, replace=False)) if rows else np.array([], int)
    xs = np.sort(rng.choice(np.arange(1, domain), size=cols, replace=False)) if cols else np.array([], int)
    segs = []
    for y in ys:
        stops = np.concatenate(([0], xs, [domain]))
        jit = rng.integers(-jitter, jitter + 1, stops.size) if jitter else np.zeros(stops.size, int)
        yy = np.clip(y + jit, 0, domain)
        for k in range(stops.size - 1):
            segs.append((stops[k], yy[k], stops[k + 1], yy[k + 1]))
    for x in xs:
        stops = np.concatenate(([0], ys, [domain]))
        jit = rng.integers(-jitter, jitter + 1, stops.size) if jitter else np.zeros(stops.size, int)
        xx = np.clip(x + jit, 0, domain)
        for k in range(stops.size - 1):
            segs.append((xx[k], stops[k], xx[k + 1], stops[k + 1]))
    arr = np.asarray(segs, dtype=float).reshape(-1, 4)
    degenerate = (arr[:, 0] == arr[:, 2]) & (arr[:, 1] == arr[:, 3])
    arr = arr[~degenerate]
    if drop > 0 and arr.shape[0]:
        keep = rng.random(arr.shape[0]) >= drop
        if not keep.any():
            keep[0] = True
        arr = arr[keep]
    return arr


def clustered_map(n: int, clusters: int = 8, spread: int = 48,
                  domain: int = 1024, max_len: int = 32, seed=0) -> np.ndarray:
    """Segments concentrated around cluster centers ("city cores").

    Produces the skewed spatial density that separates bucketing methods
    from uniform-grid ones: R-tree overlap and quadtree depth both react
    to clustering.
    """
    rng = _rng(seed)
    domain = int(domain)
    if clusters < 1:
        raise ValueError("clusters must be >= 1")
    centers = rng.integers(spread, max(domain - spread, spread) + 1, size=(clusters, 2))
    which = rng.integers(0, clusters, n)
    x1 = np.clip(centers[which, 0] + rng.integers(-spread, spread + 1, n), 0, domain)
    y1 = np.clip(centers[which, 1] + rng.integers(-spread, spread + 1, n), 0, domain)
    dx = rng.integers(-max_len, max_len + 1, n)
    dy = rng.integers(-max_len, max_len + 1, n)
    x2 = np.clip(x1 + dx, 0, domain)
    y2 = np.clip(y1 + dy, 0, domain)
    out = np.column_stack([x1, y1, x2, y2]).astype(float)
    degenerate = (out[:, 0] == out[:, 2]) & (out[:, 1] == out[:, 3])
    out[degenerate, 2] = np.clip(out[degenerate, 2] + 1, 0, domain)
    out[degenerate & (out[:, 0] == out[:, 2]), 3] += 1
    return out


def star_map(stars: int = 4, rays: int = 6, radius: int = 32,
             domain: int = 1024, seed=0) -> np.ndarray:
    """Shared-vertex stars: every ray of a star meets at its center.

    Stress input for the PM1 shared-vertex rule (Section 4.5): a block
    containing a star center holds many segments but must **not**
    subdivide below the point where they are alone together, because all
    lines in the block share that single vertex.
    """
    rng = _rng(seed)
    domain = int(domain)
    segs = []
    for _ in range(stars):
        cx = int(rng.integers(radius, domain - radius + 1))
        cy = int(rng.integers(radius, domain - radius + 1))
        for k in range(rays):
            ang = 2 * np.pi * (k + rng.random() * 0.5) / rays
            ex = int(np.clip(round(cx + radius * np.cos(ang)), 0, domain))
            ey = int(np.clip(round(cy + radius * np.sin(ang)), 0, domain))
            if (ex, ey) != (cx, cy):
                segs.append((cx, cy, ex, ey))
    return np.asarray(segs, dtype=float).reshape(-1, 4)


def rtree_split_example() -> Dict[str, np.ndarray]:
    """Figure 29's four bounding boxes A-D with the worked scan values.

    Returns the rectangles plus the expected prefix ("L Bbox") and
    suffix ("R Bbox") x-extents the figure tabulates, for exact
    verification of the sorted-sweep split's scan stage.
    """
    rects = np.array([
        [10.0, 0.0, 30.0, 1.0],   # A: left 10, right 30
        [20.0, 0.0, 50.0, 1.0],   # B: left 20, right 50
        [40.0, 0.0, 70.0, 1.0],   # C: left 40, right 70
        [60.0, 0.0, 80.0, 1.0],   # D: left 60, right 80
    ])
    return {
        "rects": rects,
        "left_bbox_left": np.array([10.0, 10.0, 10.0, 10.0]),
        "left_bbox_right": np.array([30.0, 50.0, 70.0, 80.0]),
        "right_bbox_left": np.array([20.0, 40.0, 60.0, np.inf]),
        "right_bbox_right": np.array([80.0, 80.0, 80.0, -np.inf]),
    }
