"""Segment-vs-rectangle predicates used by the node-splitting primitives.

Quadtree q-edge membership follows Samet's convention: a line segment is
stored in **every block whose closed region it intersects** (DESIGN.md
Section 5).  That convention is exactly what makes the cloning primitive
necessary -- a segment meeting both halves of a splitting node must be
replicated (paper Section 4.6, Figures 24-27).

The core test, :func:`segments_intersect_rects`, combines a bounding-box
overlap rejection with a supporting-line straddle test; for integer (or
dyadic-rational) coordinates the sign evaluations are exact in double
precision, so quadtree builds on generated maps have no epsilon
behaviour.  :func:`crosses_vertical` / :func:`crosses_horizontal` answer
the "does this line intersect the split axis inside this node?" question
of the two-stage split.
"""

from __future__ import annotations

import numpy as np

from .rect import validate_rects
from .segment import validate_segments

__all__ = [
    "segments_intersect_rects",
    "crosses_vertical",
    "crosses_horizontal",
    "clip_parameter_interval",
]


def segments_intersect_rects(segments: np.ndarray, rects: np.ndarray) -> np.ndarray:
    """Row-wise: does closed segment i intersect closed rectangle i?

    Exact for integer-valued coordinates.  Degenerate (point) segments
    reduce to closed point-in-box membership.
    """
    s = validate_segments(segments)
    r = validate_rects(rects)
    if s.shape[0] != r.shape[0]:
        raise ValueError(f"row count mismatch: {s.shape[0]} segments vs {r.shape[0]} rects")
    x1, y1, x2, y2 = s[:, 0], s[:, 1], s[:, 2], s[:, 3]
    xmin, ymin, xmax, ymax = r[:, 0], r[:, 1], r[:, 2], r[:, 3]

    bbox_overlap = ((np.minimum(x1, x2) <= xmax) & (np.maximum(x1, x2) >= xmin) &
                    (np.minimum(y1, y2) <= ymax) & (np.maximum(y1, y2) >= ymin))

    # straddle test: the box misses the segment iff all four corners lie
    # strictly on one side of the supporting line.
    dx = x2 - x1
    dy = y2 - y1

    def side(cx, cy):
        return np.sign(dx * (cy - y1) - dy * (cx - x1))

    s1 = side(xmin, ymin)
    s2 = side(xmin, ymax)
    s3 = side(xmax, ymin)
    s4 = side(xmax, ymax)
    all_positive = (s1 > 0) & (s2 > 0) & (s3 > 0) & (s4 > 0)
    all_negative = (s1 < 0) & (s2 < 0) & (s3 < 0) & (s4 < 0)
    return bbox_overlap & ~(all_positive | all_negative)


def crosses_vertical(segments: np.ndarray, rects: np.ndarray, xsplit) -> np.ndarray:
    """Row-wise: within rect i, does segment i meet both sides of ``x = xsplit``?

    True exactly when the segment intersects both the left closed
    sub-rectangle ``[xmin, xsplit] x [ymin, ymax]`` and the right one
    ``[xsplit, xmax] x [ymin, ymax]`` -- the clone condition of the
    split's second stage (paper Figure 26).
    """
    r = validate_rects(rects)
    xsplit = np.broadcast_to(np.asarray(xsplit, float), r.shape[0])
    left = r.copy()
    left[:, 2] = xsplit
    right = r.copy()
    right[:, 0] = xsplit
    return segments_intersect_rects(segments, left) & segments_intersect_rects(segments, right)


def crosses_horizontal(segments: np.ndarray, rects: np.ndarray, ysplit) -> np.ndarray:
    """Row-wise clone condition for the first-stage split ``y = ysplit``
    (paper Figure 24)."""
    r = validate_rects(rects)
    ysplit = np.broadcast_to(np.asarray(ysplit, float), r.shape[0])
    bottom = r.copy()
    bottom[:, 3] = ysplit
    top = r.copy()
    top[:, 1] = ysplit
    return segments_intersect_rects(segments, bottom) & segments_intersect_rects(segments, top)


def clip_parameter_interval(segments: np.ndarray, rects: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Liang-Barsky parametric clip of segment i against rectangle i.

    Returns ``(t0, t1)`` with the convention that ``t0 > t1`` marks an
    empty intersection.  Used by the rendering and window-query report
    paths (never by the exact membership tests above).
    """
    s = validate_segments(segments)
    r = validate_rects(rects)
    if s.shape[0] != r.shape[0]:
        raise ValueError("row count mismatch")
    x1, y1 = s[:, 0], s[:, 1]
    dx = s[:, 2] - x1
    dy = s[:, 3] - y1
    t0 = np.zeros(s.shape[0])
    t1 = np.ones(s.shape[0])
    for p, q in ((-dx, x1 - r[:, 0]), (dx, r[:, 2] - x1),
                 (-dy, y1 - r[:, 1]), (dy, r[:, 3] - y1)):
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(p != 0, q / p, 0.0)
        entering = p < 0
        leaving = p > 0
        t0 = np.where(entering, np.maximum(t0, t), t0)
        t1 = np.where(leaving, np.minimum(t1, t), t1)
        # parallel to this edge and outside it: empty interval
        outside = (p == 0) & (q < 0)
        t0 = np.where(outside, 1.0, t0)
        t1 = np.where(outside, 0.0, t1)
    return t0, t1
