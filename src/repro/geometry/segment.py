"""Vectorised line-segment arrays.

A segment set is an ``(n, 4)`` float array of rows ``[x1, y1, x2, y2]``.
The spatial structures treat segments as undirected; functions here
never reorder endpoints unless documented.  Everything is pure NumPy and
row-wise vectorised.
"""

from __future__ import annotations

import numpy as np

from .rect import rects_from_segments

__all__ = [
    "validate_segments",
    "endpoints",
    "midpoints",
    "lengths",
    "bboxes",
    "is_degenerate",
    "canonical_order",
    "segments_equal_undirected",
    "segments_intersect_segments",
]


def validate_segments(segments, name: str = "segments") -> np.ndarray:
    """Coerce to ``(n, 4)`` float, rejecting non-finite coordinates."""
    s = np.atleast_2d(np.asarray(segments, dtype=float))
    if s.ndim != 2 or s.shape[1] != 4:
        raise ValueError(f"{name} must have shape (n, 4), got {s.shape}")
    if s.size and not np.all(np.isfinite(s)):
        raise ValueError(f"{name} contains non-finite coordinates")
    return s


def endpoints(segments: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return the two ``(n, 2)`` endpoint arrays ``(p1, p2)``."""
    s = validate_segments(segments)
    return s[:, 0:2], s[:, 2:4]


def midpoints(segments: np.ndarray) -> np.ndarray:
    """``(n, 2)`` midpoints -- the R-tree mean-split statistic (4.7)."""
    s = validate_segments(segments)
    return 0.5 * (s[:, 0:2] + s[:, 2:4])


def lengths(segments: np.ndarray) -> np.ndarray:
    """Euclidean length of each segment."""
    s = validate_segments(segments)
    return np.hypot(s[:, 2] - s[:, 0], s[:, 3] - s[:, 1])


def bboxes(segments: np.ndarray) -> np.ndarray:
    """Minimum bounding rectangle of each segment (alias for rect helper)."""
    return rects_from_segments(validate_segments(segments))


def is_degenerate(segments: np.ndarray) -> np.ndarray:
    """True where both endpoints coincide (zero-length segments)."""
    s = validate_segments(segments)
    return (s[:, 0] == s[:, 2]) & (s[:, 1] == s[:, 3])


def canonical_order(segments: np.ndarray) -> np.ndarray:
    """Reorder endpoints so ``(x1, y1) <= (x2, y2)`` lexicographically.

    Gives undirected segments a unique representation, used for
    duplicate detection after cloning round-trips.
    """
    s = validate_segments(segments).copy()
    swap = (s[:, 0] > s[:, 2]) | ((s[:, 0] == s[:, 2]) & (s[:, 1] > s[:, 3]))
    s[swap] = s[swap][:, [2, 3, 0, 1]]
    return s


def segments_equal_undirected(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise undirected equality of two segment sets."""
    return np.all(canonical_order(a) == canonical_order(b), axis=1)


def _cross(ox, oy, ax, ay, bx, by):
    """Signed area of (a - o) x (b - o); exact for modest integer inputs."""
    return (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)


def segments_intersect_segments(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise closed intersection test between two segment sets.

    Implements the orientation/straddle test with full collinear-overlap
    handling.  Exact for integer coordinates (the generators' default),
    which is what the spatial-join oracle requires.
    """
    a = validate_segments(a, "a")
    b = validate_segments(b, "b")
    if a.shape[0] != b.shape[0]:
        raise ValueError("row counts differ; broadcast pairs explicitly")
    ax1, ay1, ax2, ay2 = a[:, 0], a[:, 1], a[:, 2], a[:, 3]
    bx1, by1, bx2, by2 = b[:, 0], b[:, 1], b[:, 2], b[:, 3]

    d1 = _cross(ax1, ay1, ax2, ay2, bx1, by1)
    d2 = _cross(ax1, ay1, ax2, ay2, bx2, by2)
    d3 = _cross(bx1, by1, bx2, by2, ax1, ay1)
    d4 = _cross(bx1, by1, bx2, by2, ax2, ay2)

    proper = (np.sign(d1) * np.sign(d2) < 0) & (np.sign(d3) * np.sign(d4) < 0)

    # collinear / endpoint-touching cases: point-on-segment via bbox check
    def on(px, py, qx1, qy1, qx2, qy2, d):
        return (d == 0) & (np.minimum(qx1, qx2) <= px) & (px <= np.maximum(qx1, qx2)) \
            & (np.minimum(qy1, qy2) <= py) & (py <= np.maximum(qy1, qy2))

    touch = (on(bx1, by1, ax1, ay1, ax2, ay2, d1)
             | on(bx2, by2, ax1, ay1, ax2, ay2, d2)
             | on(ax1, ay1, bx1, by1, bx2, by2, d3)
             | on(ax2, ay2, bx1, by1, bx2, by2, d4))
    return proper | touch
