"""Vectorised distance predicates for nearest-neighbour search.

Supports the nearest-line queries in :mod:`repro.structures.nearest`:
point-to-segment distance scores candidates, point-to-rectangle distance
lower-bounds whole subtrees so the search can prune (the standard
branch-and-bound argument -- a block farther than the current best
cannot contain a closer line).
"""

from __future__ import annotations

import numpy as np

from .rect import validate_rects
from .segment import validate_segments

__all__ = [
    "point_segment_distance",
    "point_rect_distance",
    "points_segments_distance",
    "points_rects_distance",
    "points_rects_max_distance",
    "segment_intersection_points",
]


def point_segment_distance(px: float, py: float, segments: np.ndarray) -> np.ndarray:
    """Euclidean distance from the point to each closed segment."""
    s = validate_segments(segments)
    x1, y1, x2, y2 = s[:, 0], s[:, 1], s[:, 2], s[:, 3]
    dx = x2 - x1
    dy = y2 - y1
    len2 = dx * dx + dy * dy
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(len2 > 0, ((px - x1) * dx + (py - y1) * dy) / len2, 0.0)
    t = np.clip(t, 0.0, 1.0)
    cx = x1 + t * dx
    cy = y1 + t * dy
    return np.hypot(px - cx, py - cy)


def point_rect_distance(px: float, py: float, rects: np.ndarray) -> np.ndarray:
    """Euclidean distance from the point to each closed rectangle.

    Zero inside or on the boundary; the branch-and-bound lower bound for
    any geometry the rectangle contains.
    """
    r = validate_rects(rects)
    dx = np.maximum(np.maximum(r[:, 0] - px, px - r[:, 2]), 0.0)
    dy = np.maximum(np.maximum(r[:, 1] - py, py - r[:, 3]), 0.0)
    return np.hypot(dx, dy)


def points_segments_distance(points: np.ndarray, segments: np.ndarray) -> np.ndarray:
    """Row-wise Euclidean distance from ``points[i]`` to ``segments[i]``.

    The pairwise form of :func:`point_segment_distance` used by the
    batched nearest-line frontier, where every (query, candidate) pair
    carries its own point.
    """
    p = np.asarray(points, dtype=float).reshape(-1, 2)
    s = validate_segments(segments)
    if p.shape != (s.shape[0], 2):
        raise ValueError("points must have shape (n, 2) matching segments")
    x1, y1, x2, y2 = s[:, 0], s[:, 1], s[:, 2], s[:, 3]
    dx = x2 - x1
    dy = y2 - y1
    len2 = dx * dx + dy * dy
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(len2 > 0,
                     ((p[:, 0] - x1) * dx + (p[:, 1] - y1) * dy) / len2, 0.0)
    t = np.clip(t, 0.0, 1.0)
    return np.hypot(p[:, 0] - (x1 + t * dx), p[:, 1] - (y1 + t * dy))


def points_rects_distance(points: np.ndarray, rects: np.ndarray) -> np.ndarray:
    """Row-wise Euclidean distance from ``points[i]`` to ``rects[i]``.

    The pairwise form of :func:`point_rect_distance`: the lower bound a
    batched branch-and-bound frontier prunes on, one (query, node) pair
    per row.
    """
    p = np.asarray(points, dtype=float).reshape(-1, 2)
    r = validate_rects(rects)
    if p.shape != (r.shape[0], 2):
        raise ValueError("points must have shape (n, 2) matching rects")
    dx = np.maximum(np.maximum(r[:, 0] - p[:, 0], p[:, 0] - r[:, 2]), 0.0)
    dy = np.maximum(np.maximum(r[:, 1] - p[:, 1], p[:, 1] - r[:, 3]), 0.0)
    return np.hypot(dx, dy)


def points_rects_max_distance(points: np.ndarray, rects: np.ndarray) -> np.ndarray:
    """Row-wise distance from ``points[i]`` to the farthest corner of ``rects[i]``.

    For a node known to hold at least one line, this bounds the distance
    to *some* line in its subtree from above, so it is a valid upper
    bound for batched branch-and-bound pruning (the min-max distance of
    classic nearest-neighbour search, specialised to rectangles).
    """
    p = np.asarray(points, dtype=float).reshape(-1, 2)
    r = validate_rects(rects)
    if p.shape != (r.shape[0], 2):
        raise ValueError("points must have shape (n, 2) matching rects")
    dx = np.maximum(np.abs(p[:, 0] - r[:, 0]), np.abs(p[:, 0] - r[:, 2]))
    dy = np.maximum(np.abs(p[:, 1] - r[:, 1]), np.abs(p[:, 1] - r[:, 3]))
    return np.hypot(dx, dy)


def segment_intersection_points(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise intersection point of two properly crossing segment sets.

    Returns an ``(n, 2)`` array.  For non-intersecting pairs the row is
    NaN; for collinear-overlap pairs (no unique point) the midpoint of
    the shared extent is returned.  Endpoint touches resolve to the
    touch point.  Used by the map-overlay pipeline to materialise the
    crossing geometry of joined pairs.
    """
    a = validate_segments(a, "a")
    b = validate_segments(b, "b")
    if a.shape[0] != b.shape[0]:
        raise ValueError("row counts differ")
    p = a[:, 0:2]
    r = a[:, 2:4] - p
    q = b[:, 0:2]
    s = b[:, 2:4] - q
    rxs = r[:, 0] * s[:, 1] - r[:, 1] * s[:, 0]
    qp = q - p
    qpxr = qp[:, 0] * r[:, 1] - qp[:, 1] * r[:, 0]
    out = np.full((a.shape[0], 2), np.nan)

    with np.errstate(divide="ignore", invalid="ignore"):
        t = (qp[:, 0] * s[:, 1] - qp[:, 1] * s[:, 0]) / rxs
        u = qpxr / rxs
    proper = (rxs != 0) & (t >= 0) & (t <= 1) & (u >= 0) & (u <= 1)
    out[proper] = p[proper] + t[proper, None] * r[proper]

    # collinear overlap: project b's endpoints onto a's parameter line
    collinear = (rxs == 0) & (qpxr == 0)
    if collinear.any():
        idx = np.flatnonzero(collinear)
        rr = r[idx]
        len2 = (rr * rr).sum(axis=1)
        safe = len2 > 0
        t0 = np.zeros(idx.size)
        t1 = np.zeros(idx.size)
        t0[safe] = ((q[idx] - p[idx]) * rr)[safe].sum(axis=1) / len2[safe]
        t1[safe] = ((q[idx] + s[idx] - p[idx]) * rr)[safe].sum(axis=1) / len2[safe]
        lo = np.maximum(np.minimum(t0, t1), 0.0)
        hi = np.minimum(np.maximum(t0, t1), 1.0)
        overlap = hi >= lo
        mid = 0.5 * (lo + hi)
        pts = p[idx] + mid[:, None] * rr
        sub = np.full((idx.size, 2), np.nan)
        sub[overlap] = pts[overlap]
        # degenerate a (a point): the point itself, but only if it lies on b
        degen = ~safe
        for j in np.flatnonzero(degen):
            row = idx[j]
            d = point_segment_distance(p[row, 0], p[row, 1], b[row][None, :])[0]
            sub[j] = p[row] if d == 0.0 else np.nan
        out[idx] = sub
    return out
