"""Vectorised axis-aligned rectangle algebra.

Rectangles are rows of an ``(n, 4)`` float array ``[xmin, ymin, xmax,
ymax]``.  The *empty* rectangle is encoded as ``[+inf, +inf, -inf,
-inf]`` so that union is simply elementwise min/max with no special
cases -- exactly the encoding the min/max scan identities produce, which
is why the R-tree split's prefix/suffix bounding boxes (paper Section
4.7, Figure 29) fall out of plain segmented scans.

All functions operate row-wise on equal-length inputs and are pure.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EMPTY_RECT",
    "make_rects",
    "empty_rects",
    "is_empty",
    "validate_rects",
    "area",
    "perimeter",
    "union",
    "intersection",
    "intersection_area",
    "union_area_pairwise",
    "contains_rect",
    "contains_point",
    "contains_point_halfopen",
    "overlaps",
    "enlargement",
    "rects_from_segments",
]

EMPTY_RECT = np.array([np.inf, np.inf, -np.inf, -np.inf])


def _as2d(rects) -> np.ndarray:
    """Coerce to an ``(n, 4)`` float view (copying only when needed)."""
    return np.atleast_2d(np.asarray(rects, dtype=float))


def make_rects(xmin, ymin, xmax, ymax) -> np.ndarray:
    """Stack coordinate vectors into an ``(n, 4)`` rectangle array."""
    r = np.stack([np.asarray(xmin, float), np.asarray(ymin, float),
                  np.asarray(xmax, float), np.asarray(ymax, float)], axis=-1)
    return np.atleast_2d(r)


def empty_rects(n: int) -> np.ndarray:
    """``n`` copies of the empty rectangle (the union identity)."""
    return np.tile(EMPTY_RECT, (n, 1))


def is_empty(rects: np.ndarray) -> np.ndarray:
    """True where a rectangle is empty (min exceeds max on either axis)."""
    rects = _as2d(rects)
    return (rects[:, 0] > rects[:, 2]) | (rects[:, 1] > rects[:, 3])


def validate_rects(rects: np.ndarray, name: str = "rects") -> np.ndarray:
    """Coerce to ``(n, 4)`` float and reject malformed non-empty rows."""
    rects = np.atleast_2d(np.asarray(rects, dtype=float))
    if rects.ndim != 2 or rects.shape[1] != 4:
        raise ValueError(f"{name} must have shape (n, 4), got {rects.shape}")
    bad = ~is_empty(rects) & ((rects[:, 0] > rects[:, 2]) | (rects[:, 1] > rects[:, 3]))
    if np.any(bad):
        raise ValueError(f"{name} row {int(np.argmax(bad))} is malformed")
    return rects


def area(rects: np.ndarray) -> np.ndarray:
    """Row-wise area; empty rectangles have area 0."""
    rects = _as2d(rects)
    w = np.maximum(rects[:, 2] - rects[:, 0], 0.0)
    h = np.maximum(rects[:, 3] - rects[:, 1], 0.0)
    out = w * h
    out[is_empty(rects)] = 0.0
    return out


def perimeter(rects: np.ndarray) -> np.ndarray:
    """Row-wise perimeter; empty rectangles have perimeter 0."""
    rects = _as2d(rects)
    w = np.maximum(rects[:, 2] - rects[:, 0], 0.0)
    h = np.maximum(rects[:, 3] - rects[:, 1], 0.0)
    out = 2.0 * (w + h)
    out[is_empty(rects)] = 0.0
    return out


def union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise smallest rectangle enclosing both inputs."""
    a = _as2d(a)
    b = _as2d(b)
    return np.column_stack([
        np.minimum(a[:, 0], b[:, 0]), np.minimum(a[:, 1], b[:, 1]),
        np.maximum(a[:, 2], b[:, 2]), np.maximum(a[:, 3], b[:, 3]),
    ])


def intersection(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise intersection (empty-encoded where disjoint)."""
    a = _as2d(a)
    b = _as2d(b)
    out = np.column_stack([
        np.maximum(a[:, 0], b[:, 0]), np.maximum(a[:, 1], b[:, 1]),
        np.minimum(a[:, 2], b[:, 2]), np.minimum(a[:, 3], b[:, 3]),
    ])
    bad = is_empty(out)
    out[bad] = EMPTY_RECT
    return out


def intersection_area(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise overlap area -- the quantity the R*-style split minimises."""
    return area(intersection(a, b))


def union_area_pairwise(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise area of the bounding union -- coverage, Guttman's goal."""
    return area(union(a, b))


def contains_rect(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """True where ``outer`` spatially contains ``inner`` (closed; every
    rectangle contains the empty rectangle)."""
    outer = _as2d(outer)
    inner = _as2d(inner)
    inside = ((outer[:, 0] <= inner[:, 0]) & (outer[:, 1] <= inner[:, 1]) &
              (outer[:, 2] >= inner[:, 2]) & (outer[:, 3] >= inner[:, 3]))
    return inside | is_empty(inner)


def contains_point(rects: np.ndarray, px, py) -> np.ndarray:
    """Closed-box point membership, row-wise."""
    rects = _as2d(rects)
    px = np.asarray(px, float)
    py = np.asarray(py, float)
    return ((rects[:, 0] <= px) & (px <= rects[:, 2]) &
            (rects[:, 1] <= py) & (py <= rects[:, 3]))


def contains_point_halfopen(rects: np.ndarray, px, py,
                            domain: float | None = None) -> np.ndarray:
    """Half-open membership ``[xmin, xmax) x [ymin, ymax)``.

    This is the **vertex membership** convention of the quadtree builders
    (DESIGN.md Section 5): every point belongs to exactly one block of a
    disjoint decomposition.  When ``domain`` is given, the global
    top/right boundary at ``x == domain`` / ``y == domain`` is treated as
    closed so boundary vertices are not orphaned.
    """
    rects = _as2d(rects)
    px = np.asarray(px, float)
    py = np.asarray(py, float)
    in_x = (rects[:, 0] <= px) & (px < rects[:, 2])
    in_y = (rects[:, 1] <= py) & (py < rects[:, 3])
    if domain is not None:
        in_x |= (px == domain) & (rects[:, 2] == domain) & (rects[:, 0] <= px)
        in_y |= (py == domain) & (rects[:, 3] == domain) & (rects[:, 1] <= py)
    return in_x & in_y


def overlaps(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """True where closed rectangles share at least a boundary point."""
    a = _as2d(a)
    b = _as2d(b)
    return ((a[:, 0] <= b[:, 2]) & (b[:, 0] <= a[:, 2]) &
            (a[:, 1] <= b[:, 3]) & (b[:, 1] <= a[:, 3]) &
            ~is_empty(a) & ~is_empty(b))


def enlargement(node_rects: np.ndarray, entry_rects: np.ndarray) -> np.ndarray:
    """Area growth of each node rectangle needed to admit each entry.

    The quantity Guttman's ChooseLeaf minimises when descending the
    R-tree (paper Section 2.3).
    """
    return area(union(node_rects, entry_rects)) - area(node_rects)


def rects_from_segments(segments: np.ndarray) -> np.ndarray:
    """Minimum bounding rectangle of each segment row ``[x1, y1, x2, y2]``."""
    s = np.atleast_2d(np.asarray(segments, dtype=float))
    if s.shape[1] != 4:
        raise ValueError(f"segments must have shape (n, 4), got {s.shape}")
    return np.column_stack([
        np.minimum(s[:, 0], s[:, 2]), np.minimum(s[:, 1], s[:, 3]),
        np.maximum(s[:, 0], s[:, 2]), np.maximum(s[:, 1], s[:, 3]),
    ])
