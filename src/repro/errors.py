"""The common error vocabulary of the serving stack.

:class:`EngineError` is the base every *intentional* serving-layer
failure derives from -- backpressure rejections, tripped circuit
breakers, injected chaos faults.  It carries a machine-readable
``reason`` code next to the human-readable message so callers (and the
stats layer, which keys rejection counters by reason) can branch
without parsing strings::

    try:
        engine.window(fp, rect)
    except EngineError as exc:
        if exc.reason == "circuit_open":
            ...

The module lives at the package root, with no imports of its own, so
both :mod:`repro.engine` and :mod:`repro.resilience` can share the base
class without a circular import; :mod:`repro.engine` re-exports every
subclass for callers.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["EngineError"]


class EngineError(RuntimeError):
    """Base of every deliberate serving-stack failure.

    ``reason`` is a short machine-readable code (``queue_full``,
    ``shutdown``, ``closed``, ``circuit_open``, ``injected_fault``,
    ...); the positional message stays free-form for humans.
    """

    #: default code; subclasses override, constructors may refine
    reason: str = "engine_error"

    def __init__(self, message: str, reason: Optional[str] = None):
        super().__init__(message)
        if reason is not None:
            self.reason = reason
