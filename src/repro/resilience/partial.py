"""Partial results: what a deadline-expired fan-out still knows.

When a sharded query's deadline passes with some shards unreported,
the engine resolves the probe with a :class:`PartialResult` wrapping
the merge of the shards that *did* report, instead of raising a
``TimeoutError`` -- graceful degradation over hard failure.  Callers
distinguish the two shapes with ``isinstance`` (the fault-free path
keeps returning bare arrays/tuples, preserving the bit-identical
invariant against the scalar queries).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PartialResult"]


@dataclass(frozen=True)
class PartialResult:
    """A best-effort answer from an incomplete shard fan-out.

    ``value`` carries the kind's normal result shape -- a global-id
    array for window/point probes, a ``(line id, distance)`` tuple for
    nearest (``(-1, inf)`` when no shard reported at all).
    """

    value: object
    shards_dropped: int
    shards_completed: int
    partial: bool = True
