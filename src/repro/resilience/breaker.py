"""Per-key circuit breakers: fail fast while a dependency is down.

The classic three-state machine, one instance per dataset fingerprint:

* **closed** -- requests flow; consecutive failures are counted and
  ``failure_threshold`` of them in a row *trips* the breaker;
* **open** -- requests fail fast (the engine raises
  :class:`CircuitOpenError` or degrades to brute force) until
  ``reset_timeout`` seconds have passed;
* **half-open** -- after the timeout, up to ``half_open_probes``
  requests are let through as probes: one success closes the breaker,
  one failure re-opens it and restarts the clock.

The clock is injectable so tests drive transitions without sleeping,
and an optional ``listener(event, key)`` receives ``trip`` /
``half_open`` / ``close`` / ``reopen`` for the stats layer.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from ..errors import EngineError

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitOpenError",
           "CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(EngineError):
    """Failed fast: the key's breaker is open (dependency still down)."""

    reason = "circuit_open"

    def __init__(self, message: str, key: Optional[str] = None,
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.key = key
        self.retry_after = retry_after  # seconds until the next probe


class CircuitBreaker:
    """One key's closed/open/half-open state machine; thread-safe."""

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 5.0, half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 listener: Optional[Callable[[str], None]] = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._listener = listener
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0          # consecutive failures while closed
        self._opened_at = 0.0
        self._probes_in_flight = 0  # half-open tokens handed out
        self.trips = 0

    def _emit(self, event: str) -> None:
        if self._listener is not None:
            self._listener(event)

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        """State with the open->half-open clock applied (lock held)."""
        if self._state == OPEN \
                and self._clock() - self._opened_at >= self.reset_timeout:
            return HALF_OPEN
        return self._state

    def retry_after(self) -> float:
        """Seconds until an open breaker starts probing (0 otherwise)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(self.reset_timeout - (self._clock() - self._opened_at),
                       0.0)

    def allow(self) -> bool:
        """May one request proceed right now?

        Closed: always.  Open: no, until the reset timeout promotes the
        breaker to half-open, where up to ``half_open_probes`` requests
        get probe tokens; the rest keep failing fast until a probe
        reports back.
        """
        event = None
        with self._lock:
            state = self._peek_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN:
                if self._state == OPEN:   # first arrival past the timeout
                    self._state = HALF_OPEN
                    self._probes_in_flight = 0
                    event = "half_open"
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    allowed = True
                else:
                    allowed = False
            else:
                allowed = False
        if event:
            self._emit(event)
        return allowed

    def record_success(self) -> None:
        event = None
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._probes_in_flight = 0
                event = "close"
            self._failures = 0
        if event:
            self._emit(event)

    def record_failure(self) -> None:
        event = None
        with self._lock:
            if self._state == HALF_OPEN:
                # the probe failed: back to open, restart the clock
                self._state = OPEN
                self._opened_at = self._clock()
                self._probes_in_flight = 0
                self._failures = 0
                self.trips += 1
                event = "reopen"
            elif self._state == CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._state = OPEN
                    self._opened_at = self._clock()
                    self._failures = 0
                    self.trips += 1
                    event = "trip"
        if event:
            self._emit(event)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"state": self._peek_state(),
                    "consecutive_failures": self._failures,
                    "trips": self.trips,
                    "retry_after": (
                        max(self.reset_timeout
                            - (self._clock() - self._opened_at), 0.0)
                        if self._state == OPEN else 0.0)}


class BreakerBoard:
    """Lazily-created breaker per key (the engine keys by fingerprint)."""

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 5.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 listener: Optional[Callable[[str, str], None]] = None):
        self._kw = dict(failure_threshold=failure_threshold,
                        reset_timeout=reset_timeout,
                        half_open_probes=half_open_probes, clock=clock)
        self._listener = listener
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, key: str) -> CircuitBreaker:
        with self._lock:
            b = self._breakers.get(key)
            if b is None:
                hook = ((lambda event, k=key: self._listener(event, k))
                        if self._listener is not None else None)
                b = CircuitBreaker(listener=hook, **self._kw)
                self._breakers[key] = b
            return b

    def allow(self, key: str) -> bool:
        return self.breaker(key).allow()

    def record_success(self, key: str) -> None:
        self.breaker(key).record_success()

    def record_failure(self, key: str) -> None:
        self.breaker(key).record_failure()

    def state(self, key: str) -> str:
        return self.breaker(key).state

    def retry_after(self, key: str) -> float:
        return self.breaker(key).retry_after()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            items = list(self._breakers.items())
        return {key: b.snapshot() for key, b in items}
