"""Resilience primitives for the serving stack.

Four cooperating pieces turn partial failure from an exception into a
degraded mode (see README's "Resilience" section for the tour):

* :mod:`~repro.resilience.faults` -- a deterministic fault-injection
  harness (:class:`FaultPlan` / :class:`FaultInjector`) firing latency,
  errors, corruption, and stalls at named engine sites;
* :mod:`~repro.resilience.retry` -- :class:`RetryPolicy`, exponential
  backoff with seeded jitter and per-site budgets;
* :mod:`~repro.resilience.breaker` -- per-fingerprint
  closed/open/half-open :class:`CircuitBreaker` state machines behind a
  :class:`BreakerBoard`, failing fast with :class:`CircuitOpenError`;
* :mod:`~repro.resilience.partial` -- :class:`PartialResult`, the
  best-effort answer of a deadline-expired shard fan-out.

This package never imports :mod:`repro.engine` (only the shared
:class:`repro.errors.EngineError` base), so either can be imported
first.
"""

from .breaker import (CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker,
                      CircuitOpenError)
from .faults import (EXAMPLE_PLANS, KINDS, SITES, FaultInjector, FaultPlan,
                     FaultSpec, InjectedCorruption, InjectedFault,
                     InjectedWorkerCrash)
from .partial import PartialResult
from .retry import RetryPolicy, retry_call

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCorruption",
    "InjectedWorkerCrash",
    "EXAMPLE_PLANS",
    "SITES",
    "KINDS",
    "RetryPolicy",
    "retry_call",
    "CircuitBreaker",
    "CircuitOpenError",
    "BreakerBoard",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "PartialResult",
]
