"""Deterministic fault injection for the serving stack.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec` rows,
each naming a **site** -- a choke point the engine instruments -- and a
fault **kind** to fire there.  The :class:`FaultInjector` evaluates the
plan at runtime: components call :meth:`FaultInjector.fire` with the
site name (plus context like the shard number), and the injector either
returns silently, sleeps, or raises.

Sites (see the module docstrings of the instrumented components):

``registry.get``
    Index lookup/build in :class:`repro.engine.registry.IndexRegistry`
    -- an ``error`` here simulates a failing build or a crashed loader.
``store.load``
    Archive load in :class:`repro.store.IndexStore` -- ``corrupt``
    exercises the retry -> quarantine -> rebuild path exactly as a torn
    file would.
``executor.job``
    Job start in the :class:`repro.engine.executor.BoundedExecutor`
    worker -- ``latency`` makes stragglers, ``error`` a failing job,
    and ``crash`` a killed worker *process*: under the process-pool
    backend the job is marked so its worker calls ``os._exit``
    mid-batch (the parent sees ``BrokenProcessPool``, restarts the
    pool, and retries); under the thread backend -- where a worker
    cannot be killed -- it degrades to an :class:`InjectedWorkerCrash`
    error.
``shard.query``
    One per-shard sub-batch of a sharded fan-out (context key
    ``shard``) -- ``stall`` holds a single shard past the batch
    deadline to force a partial result.
``wal.append``
    The write-ahead journal append inside a mutation commit -- an
    ``error`` simulates a full or failing journal disk, exercising the
    commit-abort path: the staged version is abandoned, the ack is
    withheld, the readable snapshot stays untouched, and the breakers
    are not fed (a broken write must not trip readers).
``store.put``
    An :class:`repro.store.IndexStore` write -- an ``error`` makes
    spills, worker warm-path persists, and checkpoint index persists
    fail like a full disk would: best-effort writers degrade silently,
    a checkpoint aborts without truncating the journal.

Everything is deterministic: each spec owns a ``random.Random`` seeded
from ``(plan.seed, spec index)``, arrivals are counted per spec, and
``after``/``times`` window the firings, so a chaos test replays
identically.  ``fire`` on a site with no matching specs is one dict
lookup -- cheap enough to leave compiled in on the fault-free path.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import EngineError

__all__ = [
    "SITES",
    "KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCorruption",
    "InjectedWorkerCrash",
    "EXAMPLE_PLANS",
]

#: the instrumented choke points
SITES = ("registry.get", "store.load", "executor.job", "shard.query",
         "wal.append", "store.put")

#: what a spec can do when it fires
KINDS = ("latency", "error", "corrupt", "stall", "crash")


class InjectedFault(EngineError):
    """An exception raised on purpose by the fault injector."""

    reason = "injected_fault"


class InjectedCorruption(InjectedFault):
    """An injected load failure, indistinguishable from a torn archive.

    The store's load path treats it like any other deserialisation
    error, so the *real* quarantine-and-rebuild machinery runs.
    """

    reason = "injected_corruption"


class InjectedWorkerCrash(InjectedFault):
    """A ``crash`` spec fired: this job's worker should die mid-batch.

    The process backend catches this at submit time and marks the job
    so the worker that picks it up calls ``os._exit`` -- producing a
    real ``BrokenProcessPool`` in the parent, exactly like a SIGKILL'd
    worker.  The thread backend cannot kill a worker, so there the
    exception simply propagates as the job's failure.
    """

    reason = "injected_worker_crash"


@dataclass(frozen=True)
class FaultSpec:
    """One row of a fault plan: where, what, and when to fire.

    ``probability`` gates each arrival through the spec's seeded RNG;
    ``after`` skips the first N arrivals and ``times`` caps the total
    firings (``None``: unlimited), so "fail the first two loads" or
    "stall every third sub-batch of shard 0" are all expressible.
    ``match`` filters on the caller's context, e.g.
    ``(("shard", 0),)`` fires only for shard 0.
    """

    site: str
    kind: str = "error"
    probability: float = 1.0
    times: Optional[int] = None
    after: int = 0
    delay: float = 0.0
    match: Tuple[Tuple[str, object], ...] = ()
    message: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"choose from {SITES}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {KINDS}")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        if self.times is not None and self.times < 0:
            raise ValueError("times must be >= 0")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")

    def matches(self, ctx: Dict[str, object]) -> bool:
        return all(ctx.get(k) == v for k, v in self.match)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, replayable set of fault specs plus the RNG seed."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def from_dicts(cls, rows, seed: int = 0) -> "FaultPlan":
        """Build a plan from dict rows (``match`` as a plain mapping)."""
        specs = []
        for row in rows:
            row = dict(row)
            match = row.pop("match", {})
            specs.append(FaultSpec(match=tuple(sorted(match.items())), **row))
        return cls(specs=tuple(specs), seed=seed)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse ``{"seed": ..., "specs": [{...}, ...]}`` (or a bare list)."""
        payload = json.loads(text)
        if isinstance(payload, list):
            return cls.from_dicts(payload)
        return cls.from_dicts(payload.get("specs", []),
                              seed=int(payload.get("seed", 0)))


class FaultInjector:
    """Runtime evaluator of a :class:`FaultPlan`; thread-safe.

    ``observer`` (optional) is called with ``(site, kind)`` for every
    fault that actually fires -- the engine points it at its stats
    layer.  :meth:`snapshot` exposes per-spec arrival/fired counts for
    tests and the ``chaos`` CLI.
    """

    def __init__(self, plan: Optional[FaultPlan] = None,
                 observer: Optional[Callable[[str, str], None]] = None):
        self.plan = plan if plan is not None else FaultPlan()
        self._observer = observer
        self._lock = threading.Lock()
        self._arrivals = [0] * len(self.plan.specs)
        self._fired = [0] * len(self.plan.specs)
        self._rngs = [random.Random(f"{self.plan.seed}:{i}")
                      for i in range(len(self.plan.specs))]
        self._by_site: Dict[str, List[int]] = {}
        for i, spec in enumerate(self.plan.specs):
            self._by_site.setdefault(spec.site, []).append(i)

    @property
    def active(self) -> bool:
        return bool(self.plan.specs)

    def fire(self, site: str, only_kinds: Optional[Tuple[str, ...]] = None,
             **ctx) -> None:
        """Evaluate the plan at one site; may sleep or raise.

        At most one spec raises per call (the first due one, in plan
        order); latency/stall specs all sleep before that.  With
        ``only_kinds`` the other specs are skipped *without counting an
        arrival* -- the process backend uses this to evaluate
        error/crash specs once in the parent (global, deterministic
        schedules) and latency/stall specs in the worker that runs the
        job (so a stalled shard delays only itself).
        """
        indexes = self._by_site.get(site)
        if not indexes:
            return
        to_raise: Optional[InjectedFault] = None
        naps = 0.0
        for i in indexes:
            spec = self.plan.specs[i]
            if only_kinds is not None and spec.kind not in only_kinds:
                continue
            if not spec.matches(ctx):
                continue
            with self._lock:
                self._arrivals[i] += 1
                if self._arrivals[i] <= spec.after:
                    continue
                if spec.times is not None and self._fired[i] >= spec.times:
                    continue
                if spec.probability < 1.0 \
                        and self._rngs[i].random() >= spec.probability:
                    continue
                self._fired[i] += 1
            if self._observer is not None:
                self._observer(site, spec.kind)
            if spec.kind in ("latency", "stall"):
                naps += spec.delay
            elif to_raise is None:
                msg = spec.message or (f"injected {spec.kind} at {site}"
                                       + (f" {dict(spec.match)}" if spec.match
                                          else ""))
                cls = (InjectedCorruption if spec.kind == "corrupt"
                       else InjectedWorkerCrash if spec.kind == "crash"
                       else InjectedFault)
                to_raise = cls(msg)
        if naps:
            time.sleep(naps)
        if to_raise is not None:
            raise to_raise

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            rows = [{"site": s.site, "kind": s.kind,
                     "arrivals": self._arrivals[i], "fired": self._fired[i]}
                    for i, s in enumerate(self.plan.specs)]
        fired_per_site: Dict[str, int] = {}
        for row in rows:
            fired_per_site[row["site"]] = (
                fired_per_site.get(row["site"], 0) + row["fired"])
        return {"seed": self.plan.seed, "specs": rows,
                "fired_per_site": fired_per_site,
                "fired_total": sum(r["fired"] for r in rows)}

    def reset(self) -> None:
        """Rewind every counter and RNG to the plan's initial state."""
        with self._lock:
            self._arrivals = [0] * len(self.plan.specs)
            self._fired = [0] * len(self.plan.specs)
            self._rngs = [random.Random(f"{self.plan.seed}:{i}")
                          for i in range(len(self.plan.specs))]


#: named plans for the ``chaos`` CLI and the CI smoke job
EXAMPLE_PLANS: Dict[str, FaultPlan] = {
    # sequenced so one chaos run tells the whole story: the first two
    # batches stall shard 0 (deadline -> partial results), the next
    # three hit index-lookup errors (tripping a threshold-3 breaker),
    # and a later wave finds the budgets spent and closes the circuit;
    # the corrupt spec exercises quarantine + rebuild when a store is
    # attached, and a fifth of all jobs are stragglers
    "examples": FaultPlan(specs=(
        FaultSpec(site="shard.query", kind="stall", delay=0.25,
                  match=(("shard", 0),), times=2),
        FaultSpec(site="registry.get", kind="error", after=2, times=3),
        FaultSpec(site="store.load", kind="corrupt", times=1),
        FaultSpec(site="executor.job", kind="latency", delay=0.002,
                  probability=0.2),
    ), seed=42),
    "stall": FaultPlan(specs=(
        FaultSpec(site="shard.query", kind="stall", delay=0.25,
                  match=(("shard", 0),)),
    ), seed=7),
    "buildfail": FaultPlan(specs=(
        FaultSpec(site="registry.get", kind="error", times=8),
    ), seed=7),
    "corrupt": FaultPlan(specs=(
        FaultSpec(site="store.load", kind="corrupt", probability=0.5),
    ), seed=7),
    # the process-pool story: the first two jobs get their worker
    # SIGKILL'd mid-batch (pool restart + resubmit), then the budget is
    # spent and the retried batches complete
    "workercrash": FaultPlan(specs=(
        FaultSpec(site="executor.job", kind="crash", times=2),
    ), seed=7),
    # durability: the first two mutation commits die at the journal
    # append (aborted, unacked, snapshot untouched), later ones land
    "walfail": FaultPlan(specs=(
        FaultSpec(site="wal.append", kind="error", times=2),
    ), seed=7),
    "none": FaultPlan(),
}
