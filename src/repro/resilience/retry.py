"""Retry with exponential backoff and deterministic jitter.

One small policy object shared by every retrying site in the serving
stack: store loads (a transient read error heals, a torn file goes to
quarantine after the budget) and executor submissions (a momentarily
full queue drains within a backoff or two).  Budgets are **per site**
-- each site holds its own :class:`RetryPolicy`, so a patient store
cannot starve the latency-sensitive dispatch path.

Jitter is driven by a caller-supplied ``random.Random`` so tests and
chaos runs replay identically; with no RNG the delays are the bare
exponential schedule.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

__all__ = ["RetryPolicy", "retry_call"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule: ``attempts`` tries in total.

    The delay before retry ``k`` (0-based) is
    ``min(base_delay * multiplier**k, max_delay)``, scaled by a
    symmetric jitter factor in ``[1 - jitter, 1 + jitter]``.
    ``attempts=1`` disables retrying without special-casing callers.
    """

    attempts: int = 3
    base_delay: float = 0.002
    multiplier: float = 2.0
    max_delay: float = 0.05
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int,
              rng: Optional[random.Random] = None) -> float:
        """Backoff before the retry following failed try ``attempt``."""
        d = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if rng is not None and self.jitter:
            d *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(d, 0.0)


def retry_call(fn: Callable[[], object], policy: RetryPolicy,
               retryable: Tuple[Type[BaseException], ...] = (Exception,),
               rng: Optional[random.Random] = None,
               on_retry: Optional[Callable[[int, BaseException], None]] = None,
               sleep: Callable[[float], None] = time.sleep):
    """Call ``fn`` under ``policy``; re-raise once the budget is spent.

    ``on_retry(attempt, exc)`` runs before each backoff -- the stats
    hook.  Only ``retryable`` exceptions are retried; anything else
    propagates immediately.
    """
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retryable as exc:
            if attempt + 1 >= policy.attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay(attempt, rng))
    raise AssertionError("unreachable")  # pragma: no cover
