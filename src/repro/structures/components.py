"""Data-parallel polygonization: connected components of a line map.

The paper's conclusion cites *polygonization* [Hoel93] as an operation
built from the same primitives.  Its substrate is connectivity: two
segments belong to one chain/polygon when they share an endpoint.  This
module implements that pipeline in scan-model style:

1. **vertex identification** -- the 2n endpoints are sorted and
   collapsed with the *duplicate deletion* primitive of Section 4.3
   (its advertised use-case);
2. **connected components** -- Shiloach-Vishkin-style hooking with
   pointer jumping: every round each vertex grabs its smallest
   neighbouring label and then halves its pointer chain, giving
   convergence in O(log n) rounds of O(1) primitives each;
3. **polygon detection** -- a component whose every vertex has degree 2
   is a closed chain (a polygon boundary); open chains and trees are
   classified accordingly.

Every step reports to the accounting machine, so polygonization shows
up in cost audits as the scans/permutes it really spends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..geometry.segment import validate_segments
from ..machine import Machine, get_machine
from ..machine.permute import gather
from ..primitives.dupdelete import delete_duplicates

__all__ = ["MapTopology", "connected_components", "polygonize"]


@dataclass(frozen=True)
class MapTopology:
    """Connectivity structure of a line map.

    Attributes
    ----------
    vertices:
        ``(v, 2)`` unique endpoint coordinates.
    seg_vertex:
        ``(n, 2)`` vertex ids of each segment's endpoints.
    vertex_component, segment_component:
        Component labels (smallest member vertex id, so labels are
        stable and order-independent).
    vertex_degree:
        Number of incident segments per vertex.
    rounds:
        Pointer-jumping rounds the labelling needed (O(log n)).
    """

    vertices: np.ndarray
    seg_vertex: np.ndarray
    vertex_component: np.ndarray
    segment_component: np.ndarray
    vertex_degree: np.ndarray
    rounds: int

    @property
    def num_components(self) -> int:
        return int(np.unique(self.vertex_component).size) if self.vertices.size else 0

    def component_of(self, segment_id: int) -> int:
        return int(self.segment_component[segment_id])

    def is_closed_chain(self, component: int) -> bool:
        """True when every vertex of the component has degree exactly 2.

        Such a component is a union of closed loops -- for a simple map,
        a polygon boundary.
        """
        members = self.vertex_component == component
        if not members.any():
            raise KeyError(f"no component labelled {component}")
        return bool(np.all(self.vertex_degree[members] == 2))


def _identify_vertices(segments: np.ndarray, m: Machine
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Collapse the 2n endpoints into unique vertices via Section 4.3.

    Returns ``(vertices, seg_vertex)``.
    """
    n = segments.shape[0]
    pts = np.concatenate([segments[:, 0:2], segments[:, 2:4]])  # (2n, 2)
    # sort endpoints lexicographically so duplicates become adjacent
    key_order = np.lexsort((pts[:, 1], pts[:, 0]))
    m.record("sort", 2 * n)
    sorted_pts = pts[key_order]
    same = np.zeros(2 * n, dtype=bool)
    if n:
        same[1:] = np.all(sorted_pts[1:] == sorted_pts[:-1], axis=1)
    m.record("elementwise", 2 * n)
    # duplicate deletion compacts the unique vertices (the primitive's job)
    res = delete_duplicates(same, sorted_pts[:, 0], sorted_pts[:, 1], machine=m)
    vertices = np.column_stack(res.arrays)
    # every endpoint learns its vertex id: inclusive sum of "new vertex" flags
    vid_sorted = np.cumsum(~same) - 1
    m.record("scan", 2 * n)
    vid = np.empty(2 * n, dtype=np.int64)
    vid[key_order] = vid_sorted
    m.record("permute", 2 * n)
    seg_vertex = np.column_stack([vid[:n], vid[n:]])
    return vertices, seg_vertex


def connected_components(segments: np.ndarray,
                         machine: Optional[Machine] = None) -> MapTopology:
    """Label the connected components of a segment map (scan-model style).

    Labels are the smallest vertex id in each component; segments take
    their endpoints' (equal) labels.  Runs O(log v) pointer-jumping
    rounds, each a constant number of gathers/elementwise steps.
    """
    segments = validate_segments(segments)
    m = machine or get_machine()
    n = segments.shape[0]
    if n == 0:
        z2 = np.zeros((0, 2))
        zi = np.zeros(0, dtype=np.int64)
        return MapTopology(z2, np.zeros((0, 2), np.int64), zi, zi, zi, 0)

    vertices, seg_vertex = _identify_vertices(segments, m)
    v = vertices.shape[0]
    u = seg_vertex[:, 0]
    w = seg_vertex[:, 1]

    label = np.arange(v, dtype=np.int64)
    rounds = 0
    while True:
        rounds += 1
        # hooking: each edge offers its smaller endpoint label to the other
        lu = gather(label, u, machine=m)
        lw = gather(label, w, machine=m)
        m.record("elementwise", n)
        offer = np.minimum(lu, lw)
        proposal = label.copy()
        np.minimum.at(proposal, u, offer)
        np.minimum.at(proposal, w, offer)
        m.record("permute", n)  # the concurrent-min writes, priced as routing
        # pointer jumping: label <- label[label], halving chains
        jumped = gather(proposal, proposal, machine=m)
        m.record("elementwise", v)
        changed = not np.array_equal(jumped, label)
        label = jumped
        if not changed:
            break
        if rounds > 2 * (int(np.log2(max(v, 2))) + 2) + 4:
            raise RuntimeError("component labelling failed to converge")

    seg_label = gather(label, u, machine=m)
    degree = np.bincount(np.concatenate([u, w]), minlength=v)
    return MapTopology(vertices, seg_vertex, label, seg_label,
                       degree.astype(np.int64), rounds)


@dataclass(frozen=True)
class Chain:
    """One extracted chain: ordered vertex ids, closed or open."""

    vertices: List[int]
    segments: List[int]
    closed: bool


def polygonize(segments: np.ndarray,
               machine: Optional[Machine] = None) -> List[Chain]:
    """Extract maximal chains (closed = polygons) from a line map.

    Components whose vertices all have degree 2 are traversed into
    closed loops; degree-1 vertices seed open chains.  Branching
    vertices (degree > 2) terminate chains, so a T-junction yields three
    chains meeting at the junction.  The traversal itself is the
    sequential finishing step ([Hoel93] keeps it on the front end); the
    connectivity labelling above is the data-parallel part.
    """
    topo = connected_components(segments, machine=machine)
    n = topo.seg_vertex.shape[0]
    if n == 0:
        return []

    # vertex -> incident (segment, other endpoint) lists
    incident: List[List[tuple[int, int]]] = [[] for _ in range(topo.vertices.shape[0])]
    for s, (a, b) in enumerate(topo.seg_vertex):
        incident[int(a)].append((s, int(b)))
        incident[int(b)].append((s, int(a)))

    used = np.zeros(n, dtype=bool)
    chains: List[Chain] = []

    def walk(start_vertex: int, first: tuple[int, int]) -> Chain:
        verts = [start_vertex]
        segs: List[int] = []
        seg, cur = first
        while True:
            used[seg] = True
            segs.append(seg)
            verts.append(cur)
            if cur == verts[0]:
                return Chain(verts, segs, closed=True)
            nxt = [(s, o) for s, o in incident[cur] if not used[s]]
            if topo.vertex_degree[cur] != 2 or not nxt:
                return Chain(verts, segs, closed=False)
            seg, cur = nxt[0]

    # open chains first: seed at every non-degree-2 vertex
    for vtx in np.flatnonzero(topo.vertex_degree != 2):
        for seg, other in incident[int(vtx)]:
            if not used[seg]:
                chains.append(walk(int(vtx), (seg, other)))
    # remaining segments belong to pure loops
    for seg in range(n):
        if not used[seg]:
            a = int(topo.seg_vertex[seg, 0])
            b = int(topo.seg_vertex[seg, 1])
            chains.append(walk(a, (seg, b)))
    return chains
