"""Data-parallel k-d tree construction (paper Section 1, [Blel89b]).

The paper's related-work survey notes that scan-model research covered
"the algorithm for building the [k-D-tree] data structure for a
collection of points using the scan model of computation".  This module
realises that build with the same machinery as the spatial structures:
points grouped by node as segments of a linear processor ordering, each
level splitting every active node at its median simultaneously --
a segmented sort (rank) plus an unshuffle per level, O(log n) levels,
O(log**2 n) scan-model steps total (each level pays the sort).

The resulting :class:`KDTree` is a balanced median-split tree over 2-D
points (cycling x/y by depth) supporting nearest-neighbour and
circular-range queries with brute-force-verified answers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..machine import Machine, Segments, get_machine
from ..machine.broadcast import seg_broadcast
from ..machine.sort import seg_rank
from ..primitives.unshuffle import unshuffle
from .build import BuildTrace, RoundStats

__all__ = ["KDTree", "build_kdtree"]


@dataclass
class KDTree:
    """Balanced 2-d tree: implicit heap layout over median splits.

    ``points`` are the input coordinates; ``order`` is the permutation
    that groups them by leaf, and the implicit tree structure is encoded
    by ``splits`` (per internal node: axis and coordinate) plus
    ``node_ranges`` (per node: the slice of ``order`` it owns).
    """

    points: np.ndarray
    order: np.ndarray
    split_axis: np.ndarray       # per node, -1 for leaves
    split_value: np.ndarray
    node_left: np.ndarray        # child indices, -1 for leaves
    node_right: np.ndarray
    node_start: np.ndarray       # range of `order` owned by each node
    node_end: np.ndarray
    leaf_size: int

    @property
    def num_nodes(self) -> int:
        return int(self.split_axis.size)

    @property
    def height(self) -> int:
        depth = 0
        node = 0
        while self.node_left[node] >= 0:
            node = int(self.node_left[node])
            depth += 1
        return depth + 1

    def points_in_node(self, node: int) -> np.ndarray:
        return self.order[self.node_start[node]:self.node_end[node]]

    # -- queries -----------------------------------------------------------

    def nearest(self, px: float, py: float) -> Tuple[int, float]:
        """Nearest input point: best-first search with box lower bounds."""
        if self.points.shape[0] == 0:
            raise ValueError("empty tree has no nearest point")
        best_id = -1
        best_d = np.inf
        # (lower bound, node, box) where box = [x0, y0, x1, y1] open world
        inf = np.inf
        heap = [(0.0, 0, (-inf, -inf, inf, inf))]
        while heap:
            bound, node, box = heapq.heappop(heap)
            if bound > best_d:
                break
            if self.node_left[node] < 0:
                ids = self.points_in_node(node)
                d = np.hypot(self.points[ids, 0] - px, self.points[ids, 1] - py)
                mind = float(d.min())
                cand = int(ids[d == mind].min())
                if mind < best_d or (mind == best_d and cand < best_id):
                    best_d = mind
                    best_id = cand
                continue
            axis = int(self.split_axis[node])
            val = float(self.split_value[node])
            lo_box = list(box)
            hi_box = list(box)
            lo_box[2 + axis] = val
            hi_box[0 + axis] = val
            for child, cbox in ((int(self.node_left[node]), lo_box),
                                (int(self.node_right[node]), hi_box)):
                dx = max(cbox[0] - px, px - cbox[2], 0.0)
                dy = max(cbox[1] - py, py - cbox[3], 0.0)
                b = float(np.hypot(dx, dy))
                if b <= best_d:
                    heapq.heappush(heap, (b, child, tuple(cbox)))
        return best_id, best_d

    def range_query(self, px: float, py: float, radius: float) -> np.ndarray:
        """Ids of points within ``radius`` of the query point."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out = []
        inf = np.inf
        stack = [(0, (-inf, -inf, inf, inf))]
        while stack:
            node, box = stack.pop()
            dx = max(box[0] - px, px - box[2], 0.0)
            dy = max(box[1] - py, py - box[3], 0.0)
            if np.hypot(dx, dy) > radius:
                continue
            if self.node_left[node] < 0:
                ids = self.points_in_node(node)
                d = np.hypot(self.points[ids, 0] - px, self.points[ids, 1] - py)
                out.append(ids[d <= radius])
                continue
            axis = int(self.split_axis[node])
            val = float(self.split_value[node])
            lo_box = list(box)
            hi_box = list(box)
            lo_box[2 + axis] = val
            hi_box[0 + axis] = val
            stack.append((int(self.node_left[node]), tuple(lo_box)))
            stack.append((int(self.node_right[node]), tuple(hi_box)))
        return np.sort(np.concatenate(out)) if out else np.zeros(0, dtype=np.int64)

    def check(self) -> None:
        """Validate the median-split and balance invariants."""
        for node in range(self.num_nodes):
            l, r = int(self.node_left[node]), int(self.node_right[node])
            if l < 0:
                assert self.node_end[node] - self.node_start[node] <= self.leaf_size
                continue
            axis = int(self.split_axis[node])
            val = self.split_value[node]
            left_pts = self.points[self.points_in_node(l)]
            right_pts = self.points[self.points_in_node(r)]
            assert np.all(left_pts[:, axis] <= val + 1e-12)
            assert np.all(right_pts[:, axis] >= val - 1e-12)
            nl = left_pts.shape[0]
            nr = right_pts.shape[0]
            assert abs(nl - nr) <= 1, "median split must balance"
            assert self.node_start[l] == self.node_start[node]
            assert self.node_end[r] == self.node_end[node]
            assert self.node_end[l] == self.node_start[r]


def build_kdtree(points: np.ndarray, leaf_size: int = 4,
                 machine: Optional[Machine] = None) -> tuple[KDTree, BuildTrace]:
    """Data-parallel median-split k-d tree over 2-D points.

    Every level splits all active nodes simultaneously: one segmented
    rank (a sort) decides each point's side of its node's median, one
    unshuffle regroups -- the [Blel89b] pattern.  O(log n) levels.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.size and points.shape[1] != 2:
        raise ValueError("points must have shape (n, 2)")
    if leaf_size < 1:
        raise ValueError("leaf_size must be at least 1")
    m = machine or get_machine()
    n = points.shape[0]

    split_axis = [np.int64(-1)]
    split_value = [np.float64(np.nan)]
    node_left = [np.int64(-1)]
    node_right = [np.int64(-1)]
    node_start = [np.int64(0)]
    node_end = [np.int64(n)]

    trace = BuildTrace()
    if n == 0:
        return KDTree(points, np.zeros(0, np.int64),
                      *(np.asarray(a) for a in
                        (split_axis, split_value, node_left, node_right,
                         node_start, node_end)), leaf_size), trace

    order = np.arange(n, dtype=np.int64)
    segments = Segments.single(n)
    seg_node = np.array([0], dtype=np.int64)
    depth = 0
    while True:
        lengths = segments.lengths
        active = lengths > leaf_size
        if not active.any():
            break
        steps_before = m.steps
        with m.phase(f"level{depth}"):
            axis = depth % 2
            coords = points[order, axis]
            ranks = seg_rank(coords, segments, machine=m)
            by_rank = np.empty(n)
            by_rank[ranks] = coords        # rank-space view: per-segment sorted
            offsets = ranks - segments.heads[segments.ids]
            half = seg_broadcast(lengths - lengths // 2, segments, machine=m)
            active_b = seg_broadcast(active, segments, machine=m).astype(bool)
            m.record("elementwise", n)
            side = (offsets >= half) & active_b
            res = unshuffle(side, order, segments=segments, machine=m)
            order = res.arrays[0]
            moved_side = np.empty(n, dtype=bool)
            moved_side[res.destination] = side
            segments_new = Segments.from_ids(segments.ids * 2 + moved_side)

        # node bookkeeping: every active node gains two children
        new_seg_node = np.empty(segments_new.nseg, dtype=np.int64)
        head_ids = segments.ids[segments_new.heads]
        head_side = moved_side[segments_new.heads]
        for j in range(segments_new.nseg):
            parent_seg = int(head_ids[j])
            parent_node = int(seg_node[parent_seg])
            if not active[parent_seg]:
                new_seg_node[j] = parent_node
                continue
            if node_left[parent_node] < 0:
                length = int(lengths[parent_seg])
                cut = length - length // 2  # left gets the larger half
                cut_pos = int(segments.heads[parent_seg]) + cut - 1
                split_axis[parent_node] = np.int64(depth % 2)
                # the median: largest coordinate of the left (lower-rank) half
                split_value[parent_node] = np.float64(by_rank[cut_pos])
                for which in range(2):
                    split_axis.append(np.int64(-1))
                    split_value.append(np.float64(np.nan))
                    node_left.append(np.int64(-1))
                    node_right.append(np.int64(-1))
                    node_start.append(np.int64(0))
                    node_end.append(np.int64(0))
                node_left[parent_node] = np.int64(len(split_axis) - 2)
                node_right[parent_node] = np.int64(len(split_axis) - 1)
            child = int(node_left[parent_node] if not head_side[j]
                        else node_right[parent_node])
            new_seg_node[j] = child
            node_start[child] = np.int64(segments_new.heads[j])
            node_end[child] = np.int64(segments_new.ends[j])

        segments = segments_new
        seg_node = new_seg_node
        trace.rounds.append(RoundStats(depth, int(active.sum()), n,
                                       steps_before, m.steps))
        depth += 1
        if depth > 2 * (int(np.log2(n)) + 2) + 4:
            raise RuntimeError("k-d tree build failed to terminate")

    return KDTree(points, order,
                  np.asarray(split_axis, dtype=np.int64),
                  np.asarray(split_value, dtype=float),
                  np.asarray(node_left, dtype=np.int64),
                  np.asarray(node_right, dtype=np.int64),
                  np.asarray(node_start, dtype=np.int64),
                  np.asarray(node_end, dtype=np.int64),
                  leaf_size), trace
