"""Linear quadtree representation (paper Section 3.3, [Best92]).

"Because of the bucket PMR quadtree's regular decomposition, a unique
linear ordering may readily be obtained (given a particular linear
ordering methodology such as a Peano curve)."  A *linear* quadtree
stores only the leaf blocks, sorted by that ordering -- the layout the
SAM model needs and the form the cited CM-2/CM-5 implementations
actually held in processor memory.

:class:`LinearQuadtree` is the pointerless twin of
:class:`~repro.structures.quadblock.Quadtree`: a sorted vector of
(location code, level) pairs plus the same CSR line assignment.  Point
queries become a binary search over codes; the pointered and linear
forms convert losslessly in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..machine.ordering import hilbert_encode, morton_encode
from .quadblock import Quadtree

__all__ = ["LinearQuadtree", "to_linear"]


@dataclass
class LinearQuadtree:
    """Pointerless quadtree: leaves sorted by space-filling-curve code.

    Attributes
    ----------
    codes:
        Location code of each leaf's lower-left cell at the finest
        resolution, shifted so leaves sort in curve order; strictly
        increasing.
    levels:
        Depth of each leaf.
    boxes:
        ``(k, 4)`` leaf boxes, in code order.
    leaf_ptr, leaf_lines:
        CSR line-id assignment aligned with the code order.
    lines, domain, height, curve:
        Input segments, space side, maximal depth, and which curve
        ordered the codes (``"morton"`` or ``"hilbert"``).
    """

    codes: np.ndarray
    levels: np.ndarray
    boxes: np.ndarray
    leaf_ptr: np.ndarray
    leaf_lines: np.ndarray
    lines: np.ndarray
    domain: float
    height: int
    curve: str

    @property
    def num_leaves(self) -> int:
        return int(self.codes.size)

    def lines_in_leaf(self, k: int) -> np.ndarray:
        return self.leaf_lines[self.leaf_ptr[k]:self.leaf_ptr[k + 1]]

    def find_leaf(self, px: float, py: float) -> int:
        """Leaf containing the point, by binary search over codes.

        Only valid for Morton ordering, where every block's cells are a
        contiguous code range; that contiguity is exactly why Morton is
        the ordering of choice for linear quadtrees.
        """
        if self.curve != "morton":
            raise ValueError("code binary search requires Morton ordering")
        if not (0 <= px <= self.domain and 0 <= py <= self.domain):
            raise ValueError(f"point ({px}, {py}) outside the domain")
        cx = min(int(px), int(self.domain) - 1)
        cy = min(int(py), int(self.domain) - 1)
        code = int(morton_encode(np.array([cx]), np.array([cy]),
                                 bits=max(self.height, 1))[0])
        k = int(np.searchsorted(self.codes, code, side="right")) - 1
        k = max(k, 0)
        # the candidate block covers a code range of size 4**(height-level)
        span = 4 ** (self.height - int(self.levels[k]))
        if not self.codes[k] <= code < self.codes[k] + span:
            raise ValueError(f"point ({px}, {py}) not covered; corrupt code list")
        return k

    def point_query(self, px: float, py: float) -> np.ndarray:
        """Ids of lines sharing the leaf that contains the point."""
        return np.unique(self.lines_in_leaf(self.find_leaf(px, py)))

    def window_query(self, rect, exact: bool = True) -> np.ndarray:
        """Ids of lines intersecting the closed query rectangle.

        The linear layout has no internal nodes to prune through, so the
        leaf vector is filtered wholesale -- one vectorised overlap test
        over all leaves (the data-parallel idiom: every leaf processor
        tests the window simultaneously), then the candidate lines are
        optionally verified exactly.
        """
        from ..geometry.clip import segments_intersect_rects
        from ..geometry.rect import overlaps, validate_rects

        rect = validate_rects(np.asarray(rect, dtype=float).reshape(1, 4))[0]
        hit = overlaps(self.boxes, np.tile(rect, (self.num_leaves, 1)))
        cand: list[np.ndarray] = [self.lines_in_leaf(int(k))
                                  for k in np.flatnonzero(hit)]
        ids = np.unique(np.concatenate(cand)) if cand else np.zeros(0, np.int64)
        if exact and ids.size:
            keep = segments_intersect_rects(self.lines[ids],
                                            np.tile(rect, (ids.size, 1)))
            ids = ids[keep]
        return ids

    def window_query_codes(self, rect, exact: bool = True) -> np.ndarray:
        """Window query via Morton code ranges (binary searches only).

        The classic linear-quadtree range query: the window is
        decomposed into maximal Morton intervals
        (:func:`~repro.machine.ordering.morton_window_ranges`), each
        intersected with the sorted leaf-code vector by binary search.
        Returns exactly what :meth:`window_query` returns; no leaf-box
        geometry is touched until the final exact refinement.
        """
        from ..geometry.clip import segments_intersect_rects
        from ..machine.ordering import morton_window_ranges

        if self.curve != "morton":
            raise ValueError("code-range queries require Morton ordering")
        rect = np.asarray(rect, dtype=float).reshape(4)
        res = int(self.domain)
        # cells whose closed unit box meets the closed window (DESIGN §5)
        cx0 = max(int(np.ceil(rect[0] - 1.0)), 0)
        cy0 = max(int(np.ceil(rect[1] - 1.0)), 0)
        cx1 = min(int(np.floor(rect[2])) + 1, res)
        cy1 = min(int(np.floor(rect[3])) + 1, res)
        if cx0 >= cx1 or cy0 >= cy1:
            return np.zeros(0, dtype=np.int64)
        bits = max(self.height, 1)
        ranges = morton_window_ranges(cx0, cy0, cx1, cy1, bits)

        spans = 4 ** (self.height - self.levels)
        cand: list[np.ndarray] = []
        for start, stop in ranges:
            lo = int(np.searchsorted(self.codes, start, side="right")) - 1
            lo = max(lo, 0)
            hi = int(np.searchsorted(self.codes, stop, side="left"))
            for k in range(lo, hi):
                if self.codes[k] + spans[k] > start and self.codes[k] < stop:
                    cand.append(self.lines_in_leaf(k))
        ids = np.unique(np.concatenate(cand)) if cand else np.zeros(0, np.int64)
        if exact and ids.size:
            keep = segments_intersect_rects(self.lines[ids],
                                            np.tile(rect, (ids.size, 1)))
            ids = ids[keep]
        return ids

    def check(self) -> None:
        """Validate sortedness, disjointness and full coverage."""
        assert np.all(np.diff(self.codes) > 0), "codes must strictly increase"
        if self.curve == "morton":
            spans = 4 ** (self.height - self.levels)
            ends = self.codes + spans
            assert np.all(ends[:-1] <= self.codes[1:]), "blocks overlap in code space"
            total = int(spans.sum())
            assert total == 4 ** self.height, (
                f"leaves cover {total} cells of {4 ** self.height}")
        assert self.leaf_ptr.size == self.num_leaves + 1


def to_linear(tree: Quadtree, curve: Literal["morton", "hilbert"] = "morton"
              ) -> LinearQuadtree:
    """Flatten a pointered quadtree into its linear (sorted-leaf) form."""
    if curve not in ("morton", "hilbert"):
        raise ValueError(f"unknown curve {curve!r}")
    height = tree.max_depth
    leaves = tree.leaf_ids()
    boxes = tree.boxes[leaves]
    levels = tree.level[leaves]
    bits = max(height, 1)
    x = boxes[:, 0].astype(np.int64)
    y = boxes[:, 1].astype(np.int64)
    if curve == "morton":
        codes = morton_encode(x, y, bits=bits)
    else:
        codes = hilbert_encode(x, y, bits=bits)
    order = np.argsort(codes, kind="stable")

    leaves = leaves[order]
    counts = np.diff(tree.node_ptr)[leaves]
    leaf_ptr = np.zeros(leaves.size + 1, dtype=np.int64)
    np.cumsum(counts, out=leaf_ptr[1:])
    leaf_lines = np.concatenate(
        [tree.lines_in_node(int(leaf)) for leaf in leaves]
    ) if leaves.size else np.zeros(0, dtype=np.int64)

    return LinearQuadtree(
        codes=codes[order],
        levels=levels[order],
        boxes=boxes[order],
        leaf_ptr=leaf_ptr,
        leaf_lines=leaf_lines,
        lines=tree.lines,
        domain=tree.domain,
        height=height,
        curve=curve,
    )
