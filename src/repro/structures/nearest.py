"""Nearest-line queries over the built structures.

A natural extension of the paper's query repertoire: given a point,
find the closest line segment.  Both tree families support the
classic branch-and-bound search -- blocks (or bounding rectangles)
farther away than the best line found so far cannot contain a closer
one, so whole subtrees prune on the point-to-rectangle lower bound.

The brute-force oracle scans every line; the structures must return
exactly the same answer (ties broken by lowest line id).
"""

from __future__ import annotations

import heapq
from typing import Tuple

import numpy as np

from ..geometry.distance import point_rect_distance, point_segment_distance
from .quadblock import Quadtree
from .rtree import RTree

__all__ = ["brute_nearest", "quadtree_nearest", "rtree_nearest"]


def brute_nearest(lines: np.ndarray, px: float, py: float) -> Tuple[int, float]:
    """Exhaustive nearest line; returns ``(line_id, distance)``."""
    lines = np.atleast_2d(np.asarray(lines, dtype=float))
    if lines.shape[0] == 0:
        raise ValueError("empty line set has no nearest line")
    d = point_segment_distance(px, py, lines)
    best = int(np.argmin(d))  # argmin takes the first == lowest id on ties
    return best, float(d[best])


def quadtree_nearest(tree: Quadtree, px: float, py: float) -> Tuple[int, float]:
    """Best-first nearest-line search over a quadtree decomposition."""
    if tree.lines.shape[0] == 0:
        raise ValueError("empty tree has no nearest line")
    best_id = -1
    best_d = np.inf
    heap = [(0.0, 0)]
    while heap:
        bound, node = heapq.heappop(heap)
        if bound > best_d:
            break  # every remaining block is at least this far
        ch = tree.children[node]
        if ch[0] < 0:
            ids = tree.lines_in_node(node)
            if ids.size:
                d = point_segment_distance(px, py, tree.lines[ids])
                mind = float(d.min())
                cand = int(ids[d == mind].min())  # lowest id on ties
                if mind < best_d or (mind == best_d and cand < best_id):
                    best_d = mind
                    best_id = cand
        else:
            dists = point_rect_distance(px, py, tree.boxes[ch])
            for c, dist in zip(ch, dists):
                if dist <= best_d:
                    heapq.heappush(heap, (float(dist), int(c)))
    if best_id < 0:
        raise ValueError("tree holds no lines")
    return best_id, best_d


def rtree_nearest(tree: RTree, px: float, py: float) -> Tuple[int, float]:
    """Best-first nearest-line search over an R-tree.

    Entries in the heap are ``(lower bound, level, node)``; level -1
    denotes a line entry.  Because sibling rectangles overlap, several
    subtrees can hold candidates at the same bound -- the non-disjoint
    analogue of the extra node visits measured in experiment C6.
    """
    if tree.lines.shape[0] == 0:
        raise ValueError("empty tree has no nearest line")
    top = tree.height - 1
    best_id = -1
    best_d = np.inf
    heap = [(float(point_rect_distance(px, py, tree.level_mbr[top][0][None, :])[0]),
             top, 0)]
    while heap:
        bound, level, node = heapq.heappop(heap)
        if bound > best_d:
            break
        if level == -1:
            d = float(point_segment_distance(px, py, tree.lines[node][None, :])[0])
            if d < best_d or (d == best_d and node < best_id):
                best_d = d
                best_id = node
            continue
        if level == 0:
            ids = tree.lines_in_leaf(node)
            bounds = point_rect_distance(px, py, tree.entry_bbox[ids])
            for lid, b in zip(ids, bounds):
                if b <= best_d:
                    heapq.heappush(heap, (float(b), -1, int(lid)))
        else:
            kids = np.flatnonzero(tree.level_parent[level - 1] == node)
            bounds = point_rect_distance(px, py, tree.level_mbr[level - 1][kids])
            for c, b in zip(kids, bounds):
                if b <= best_d:
                    heapq.heappush(heap, (float(b), level - 1, int(c)))
    if best_id < 0:
        raise ValueError("tree holds no lines")
    return best_id, best_d
