"""Quadtree block bookkeeping and the assembled quadtree structure.

The data-parallel builders (Sections 5.1-5.2) work on two coupled
collections: the **line processor vector** (segmented by node) and the
**node table** (one record per quadtree block, including the empty
leaves that hold no segment group).  This module owns the node table and
the finished :class:`Quadtree` the builders hand back.

Child order is ``SW, SE, NW, NE`` (DESIGN.md Section 5), matching the
two-stage split's y-then-x partitioning; levels count from 0 at the
root, and a tree of maximal height ``H`` over domain ``2**H`` bottoms
out at 1x1 blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.clip import segments_intersect_rects
from ..geometry.rect import contains_point_halfopen, overlaps, validate_rects

__all__ = ["NodeTable", "Quadtree", "CHILD_NAMES", "child_box"]

CHILD_NAMES = ("SW", "SE", "NW", "NE")


def child_box(box: np.ndarray, code: int) -> np.ndarray:
    """Box of child ``code`` (0=SW, 1=SE, 2=NW, 3=NE) of ``box``."""
    x0, y0, x1, y1 = box
    cx = 0.5 * (x0 + x1)
    cy = 0.5 * (y0 + y1)
    xbit = code & 1
    ybit = (code >> 1) & 1
    return np.array([
        cx if xbit else x0, cy if ybit else y0,
        x1 if xbit else cx, y1 if ybit else cy,
    ])


class NodeTable:
    """Growable table of quadtree blocks used during a build.

    Append-only: nodes are created at the root and by :meth:`split`,
    which adds all four children of a block (empty ones included, as the
    paper's Figure 2 discussion of empty-node proliferation requires us
    to count them).
    """

    def __init__(self, domain: float):
        self.domain = float(domain)
        self.boxes: List[np.ndarray] = [np.array([0.0, 0.0, self.domain, self.domain])]
        self.level: List[int] = [0]
        self.parent: List[int] = [-1]
        self.children: List[Optional[Tuple[int, int, int, int]]] = [None]

    def __len__(self) -> int:
        return len(self.boxes)

    def split(self, node: int) -> Tuple[int, int, int, int]:
        """Create the four children of ``node``; returns their indices."""
        if self.children[node] is not None:
            raise ValueError(f"node {node} already split")
        base = len(self.boxes)
        ids = (base, base + 1, base + 2, base + 3)
        for code in range(4):
            self.boxes.append(child_box(self.boxes[node], code))
            self.level.append(self.level[node] + 1)
            self.parent.append(node)
            self.children.append(None)
        self.children[node] = ids
        return ids

    def freeze(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return dense arrays ``(boxes, level, parent, children)``."""
        k = len(self.boxes)
        boxes = np.vstack(self.boxes) if k else np.zeros((0, 4))
        level = np.asarray(self.level, dtype=np.int64)
        parent = np.asarray(self.parent, dtype=np.int64)
        children = np.full((k, 4), -1, dtype=np.int64)
        for i, ch in enumerate(self.children):
            if ch is not None:
                children[i] = ch
        return boxes, level, parent, children


@dataclass
class Quadtree:
    """A finished quadtree decomposition with its q-edge assignment.

    Shared by the PM1 and bucket PMR builders; the two differ only in
    the splitting rule that produced the decomposition.

    Attributes
    ----------
    lines:
        ``(n0, 4)`` original input segments (never cloned copies).
    boxes, level, parent, children:
        Node table arrays; ``children[i]`` is ``-1`` for leaves.
    node_ptr, node_lines:
        CSR mapping from node index to the ids of the lines whose
        q-edges it stores (non-empty only at leaves).
    domain, max_depth:
        Space side and subdivision cap used by the build.
    """

    lines: np.ndarray
    boxes: np.ndarray
    level: np.ndarray
    parent: np.ndarray
    children: np.ndarray
    node_ptr: np.ndarray
    node_lines: np.ndarray
    domain: float
    max_depth: int

    # -- structure metrics -------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return int(self.boxes.shape[0])

    @property
    def is_leaf(self) -> np.ndarray:
        return self.children[:, 0] < 0

    @property
    def num_leaves(self) -> int:
        return int(np.count_nonzero(self.is_leaf))

    @property
    def num_empty_leaves(self) -> int:
        counts = np.diff(self.node_ptr)
        return int(np.count_nonzero(self.is_leaf & (counts == 0)))

    @property
    def height(self) -> int:
        return int(self.level.max(initial=0))

    @property
    def q_edge_count(self) -> int:
        """Total q-edges (line copies across leaves)."""
        return int(self.node_lines.size)

    def leaf_ids(self) -> np.ndarray:
        return np.flatnonzero(self.is_leaf)

    def lines_in_node(self, node: int) -> np.ndarray:
        return self.node_lines[self.node_ptr[node]:self.node_ptr[node + 1]]

    def leaf_items(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(leaf_id, line_ids)`` pairs."""
        for leaf in self.leaf_ids():
            yield int(leaf), self.lines_in_node(int(leaf))

    def decomposition_key(self) -> list[tuple[tuple, tuple]]:
        """Canonical ``(box, sorted line ids)`` list for shape comparison.

        Two builds of the same map are identical iff their keys match --
        the order-independence oracle for PM1 and bucket PMR.
        """
        out = []
        for leaf, ids in self.leaf_items():
            out.append((tuple(self.boxes[leaf].tolist()), tuple(sorted(ids.tolist()))))
        out.sort()
        return out

    # -- queries -------------------------------------------------------------

    def find_leaf(self, px: float, py: float) -> int:
        """Leaf block containing point ``(px, py)`` (half-open membership)."""
        hits = contains_point_halfopen(self.boxes, px, py, self.domain) & self.is_leaf
        idx = np.flatnonzero(hits)
        if idx.size != 1:
            raise ValueError(f"point ({px}, {py}) lies in {idx.size} leaves; "
                             "outside the domain?")
        return int(idx[0])

    def point_query(self, px: float, py: float) -> np.ndarray:
        """Ids of lines whose q-edge shares the leaf containing the point."""
        return np.unique(self.lines_in_node(self.find_leaf(px, py)))

    def window_query(self, rect, exact: bool = True,
                     count_visits: bool = False):
        """Ids of lines intersecting the closed query rectangle.

        Descends from the root, pruning blocks disjoint from the window;
        candidate lines from reached leaves are optionally verified with
        the exact segment-rectangle test.  With ``count_visits`` the
        number of visited nodes is returned too (experiment C6's
        metric).
        """
        rect = validate_rects(np.asarray(rect, dtype=float).reshape(1, 4))[0]
        visits = 0
        stack = [0]
        cand: list[np.ndarray] = []
        while stack:
            node = stack.pop()
            visits += 1
            if not overlaps(self.boxes[node][None, :], rect[None, :])[0]:
                continue
            ch = self.children[node]
            if ch[0] < 0:
                ids = self.lines_in_node(node)
                if ids.size:
                    cand.append(ids)
            else:
                stack.extend(int(c) for c in ch)
        ids = np.unique(np.concatenate(cand)) if cand else np.zeros(0, dtype=np.int64)
        if exact and ids.size:
            tiles = np.tile(rect, (ids.size, 1))
            keep = segments_intersect_rects(self.lines[ids], tiles)
            ids = ids[keep]
        return (ids, visits) if count_visits else ids

    # -- validation and rendering ---------------------------------------------

    def check(self, full: bool = False) -> None:
        """Raise AssertionError on any structural invariant violation.

        Always checked: geometry of the hierarchy and CSR integrity.
        With ``full`` (O(leaves x lines)): the q-edge assignment is
        exactly "every line is stored in every leaf its closed block
        intersects".
        """
        k = self.num_nodes
        assert self.node_ptr.shape == (k + 1,)
        assert self.node_ptr[0] == 0 and self.node_ptr[-1] == self.node_lines.size
        assert np.all(np.diff(self.node_ptr) >= 0)
        internal = ~self.is_leaf
        for i in np.flatnonzero(internal):
            assert self.node_ptr[i + 1] == self.node_ptr[i], f"internal node {i} holds lines"
            ch = self.children[i]
            for code, c in enumerate(ch):
                assert self.parent[c] == i
                assert self.level[c] == self.level[i] + 1
                np.testing.assert_allclose(self.boxes[c], child_box(self.boxes[i], code))
        assert np.all(self.level <= self.max_depth)
        if full and self.lines.size:
            n = self.lines.shape[0]
            for leaf in self.leaf_ids():
                box = np.tile(self.boxes[leaf], (n, 1))
                expected = np.flatnonzero(segments_intersect_rects(self.lines, box))
                got = np.sort(self.lines_in_node(int(leaf)))
                assert np.array_equal(got, expected), (
                    f"leaf {leaf}: stored {got.tolist()}, geometry says {expected.tolist()}")

    def render_grid(self, cell: int = 1) -> str:
        """ASCII drawing of the decomposition (the Figure 1/4 style).

        Each finest-resolution cell becomes a ``2*cell``-wide character
        patch; block boundaries draw with ``+-|`` and block interiors
        show the number of q-edges stored in the leaf (``.`` for empty).
        Intended for small trees (the worked examples); the string grows
        with ``domain**2``.
        """
        res = int(self.domain)
        if res > 64:
            raise ValueError("render_grid is for small domains (<= 64)")
        w = 2 * cell
        cols = res * w + 1
        rows_n = res * cell + 1
        grid = [[" "] * cols for _ in range(rows_n)]
        for leaf in self.leaf_ids():
            x0, y0, x1, y1 = (int(v) for v in self.boxes[leaf])
            top = (res - y1) * cell
            bot = (res - y0) * cell
            left = x0 * w
            right = x1 * w
            for c in range(left, right + 1):
                grid[top][c] = "-"
                grid[bot][c] = "-"
            for r in range(top, bot + 1):
                grid[r][left] = "|"
                grid[r][right] = "|"
            for r, c in ((top, left), (top, right), (bot, left), (bot, right)):
                grid[r][c] = "+"
            count = self.node_ptr[leaf + 1] - self.node_ptr[leaf]
            label = str(int(count)) if count else "."
            rr = (top + bot) // 2
            cc = (left + right) // 2
            for k, ch in enumerate(label[: right - left - 1]):
                grid[rr][cc + k] = ch
        return "\n".join("".join(row).rstrip() for row in grid)

    def render(self, labels: Optional[Sequence[str]] = None) -> str:
        """ASCII rendering of the decomposition, one leaf per row."""
        rows = []
        for leaf, ids in self.leaf_items():
            box = self.boxes[leaf]
            tag = ",".join(labels[i] if labels else str(i) for i in sorted(ids.tolist()))
            rows.append(f"  L{self.level[leaf]} [{box[0]:g},{box[1]:g}]-[{box[2]:g},{box[3]:g}]"
                        f"  {{{tag}}}")
        head = (f"Quadtree domain={self.domain:g} nodes={self.num_nodes} "
                f"leaves={self.num_leaves} (empty {self.num_empty_leaves}) "
                f"height={self.height} q-edges={self.q_edge_count}")
        return "\n".join([head] + rows)
