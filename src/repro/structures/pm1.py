"""Data-parallel PM1 quadtree construction (paper Section 5.1).

The build starts with every line assigned to the root node (Figure 30)
and iterates: the Section 4.5 rule marks nodes violating the PM1 leaf
criteria, and the Section 4.6 primitive splits them all simultaneously,
cloning every line that meets a split axis (Figures 31-33).  Each round
costs O(1) primitives, and for well-separated vertices the number of
rounds is O(log n), giving the paper's O(log n) build.

The PM1 leaf criteria (Section 2.1): a leaf holds at most one vertex,
and a leaf holding a vertex may contain only q-edges of lines incident
to that vertex; a vertex-free leaf holds at most one q-edge.  Inputs
with coincident or pathologically close vertices (Figure 2) subdivide
deeply; the ``max_depth`` cap (default: the 1x1-block resolution) makes
such inputs terminate, mirroring practical implementations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..machine import Machine, Segments
from ..machine.broadcast import seg_broadcast
from ..primitives.pm1_split import pm1_should_split
from .build import BuildTrace, build_quadtree
from .quadblock import Quadtree

__all__ = ["build_pm1", "PM1Quadtree"]

PM1Quadtree = Quadtree  # the PM1 result type is the generic quadtree


def build_pm1(lines: np.ndarray, domain: int, max_depth: Optional[int] = None,
              machine: Optional[Machine] = None) -> tuple[Quadtree, BuildTrace]:
    """Build the data-parallel PM1 quadtree of ``lines`` over ``domain``.

    Returns the finished tree and the per-round build trace.  The
    decomposition is unique (independent of input order); duplicate
    lines are rejected because no PM1 leaf could ever separate them.
    """
    lines = np.asarray(lines, dtype=float)
    if lines.size:
        canon = np.where((lines[:, 0:2] > lines[:, 2:4]).any(axis=1)[:, None],
                         lines[:, [2, 3, 0, 1]], lines)
        uniq = np.unique(canon, axis=0)
        if uniq.shape[0] != lines.shape[0]:
            raise ValueError("duplicate line segments cannot be represented in a PM1 quadtree")
        degenerate = (lines[:, 0] == lines[:, 2]) & (lines[:, 1] == lines[:, 3])
        if degenerate.any():
            raise ValueError("degenerate (zero-length) segments are not PM1 input")

    def rule(segs_xy: np.ndarray, segments: Segments, node_boxes: np.ndarray,
             node_levels: np.ndarray, m: Machine) -> np.ndarray:
        line_boxes = np.column_stack([
            seg_broadcast(node_boxes[:, c], segments, machine=m) for c in range(4)
        ])
        decision = pm1_should_split(segs_xy, line_boxes, segments,
                                    domain=float(domain), machine=m)
        return decision.must_split

    return build_quadtree(lines, domain, rule, max_depth=max_depth, machine=machine)
