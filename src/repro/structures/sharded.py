"""Sharded spatial indexes: space-sorted segment ranges, one tree each.

The paper's structures decompose *space*; this module decomposes the
*dataset*.  Segments are sorted by the Morton or Hilbert code of their
midpoint cell (:mod:`repro.machine.ordering`), cut into ``K``
contiguous ranges of near-equal size, and each range gets its own
PM1 / bucket-PMR / R-tree plus the minimum bounding rectangle of its
segments.  Because the ranges follow a space-filling curve, shards are
spatially coherent and their MBRs overlap little, so most probes touch
a small subset of shards.

Query semantics (the invariants the differential harness checks):

* every segment belongs to **exactly one** shard -- segments are
  assigned whole by their midpoint's curve position, never clipped --
  so fan-out/merge cannot manufacture cross-shard duplicates; merged
  id sets are still passed through ``np.unique`` because a single
  shard's quadtree may hold several q-edges of one segment;
* within a shard, segments are reordered by **ascending global id**,
  so the per-shard nearest tie-break (lowest local id) coincides with
  the global tie-break (lowest global id) and the merged nearest
  answer is identical to the unsharded and brute-force answers;
* ``point_query`` is answered as the *exact* degenerate window
  ``[px, py, px, py]``: a shard's leaf decomposition differs from the
  unsharded tree's, so the leaf-content ("candidate") semantics of
  :meth:`Quadtree.point_query` are not decomposition-independent --
  the exact refinement is, and matches ``brute_point_query``;
* ``nearest`` prunes shards whose MBR lower bound exceeds the best
  distance found so far (scalar path) or the min-max corner bound over
  all shards (batch planning path);
* ``K = 1`` degenerates to the unsharded tree wrapped in one shard.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.distance import points_rects_distance, points_rects_max_distance
from ..geometry.rect import overlaps, validate_rects
from ..machine import Machine
from ..resilience import PartialResult
from ..machine.ordering import hilbert_encode, morton_encode
from .batch import (
    batch_nearest_quadtree,
    batch_nearest_rtree,
    batch_window_query_quadtree,
    batch_window_query_rtree,
)
from .bucket_pmr import build_bucket_pmr
from .join import quadtree_join, rtree_join
from .nearest import quadtree_nearest, rtree_nearest
from .pm1 import build_pm1
from .quadblock import Quadtree
from .rtree import RTree, build_rtree

__all__ = ["Shard", "ShardedIndex", "build_sharded", "repair_sharded",
           "reshard", "shard_keys", "sharded_join", "ORDERINGS"]

ORDERINGS = ("morton", "hilbert")

#: structure name -> tree family (mirrors repro.engine's table)
_FAMILY = {"pmr": "quadtree", "pm1": "quadtree", "rtree": "rtree"}

_KEY_BITS = 16


def shard_keys(lines: np.ndarray, domain: float, ordering: str = "morton",
               bits: int = _KEY_BITS) -> np.ndarray:
    """Space-filling-curve key of each segment's midpoint cell.

    Midpoints are scaled onto a ``2^bits`` x ``2^bits`` cell grid over
    ``[0, domain]^2`` and encoded with the chosen curve.  The key decides
    shard membership only; resolution beyond the shard count is free.
    """
    if ordering not in ORDERINGS:
        raise ValueError(f"unknown ordering {ordering!r}; choose from {ORDERINGS}")
    lines = np.asarray(lines, dtype=float).reshape(-1, 4)
    side = 1 << bits
    mids = 0.5 * (lines[:, 0:2] + lines[:, 2:4])
    cells = np.clip((mids / float(domain) * side).astype(np.int64), 0, side - 1)
    encode = morton_encode if ordering == "morton" else hilbert_encode
    return encode(cells[:, 0], cells[:, 1], bits)


@dataclass
class Shard:
    """One contiguous curve range: its global ids, MBR, and tree."""

    ids: np.ndarray    # ascending global line ids
    mbr: np.ndarray    # (4,) bounding rectangle of the shard's segments
    tree: object       # Quadtree | RTree over the shard's segments


@dataclass
class ShardedIndex:
    """K per-range trees answering queries by fan-out and merge."""

    lines: np.ndarray
    domain: float
    structure: str
    ordering: str
    shards: List[Shard]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def family(self) -> str:
        return _FAMILY[self.structure]

    @property
    def num_lines(self) -> int:
        return int(self.lines.shape[0])

    def shard_mbrs(self) -> np.ndarray:
        """``(K, 4)`` array of shard bounding rectangles."""
        if not self.shards:
            return np.zeros((0, 4))
        return np.stack([s.mbr for s in self.shards])

    def shard_sizes(self) -> np.ndarray:
        return np.array([s.ids.size for s in self.shards], dtype=np.int64)

    # -- scalar queries --------------------------------------------------

    def window_query(self, rect, exact: bool = True,
                     deadline: Optional[float] = None) -> np.ndarray:
        """Global ids of lines intersecting the closed rectangle.

        Fans out to shards whose MBR overlaps the window and merges the
        per-shard hits.  With ``exact`` the answer is set-identical to
        the unsharded tree and to brute force; without it each shard
        contributes its own candidate set (decomposition-dependent).

        With a ``deadline`` (relative seconds) the fan-out degrades
        gracefully: when the budget runs out with overlapping shards
        still unqueried, the merge of the shards visited so far comes
        back wrapped in a :class:`~repro.resilience.PartialResult`
        (``shards_dropped`` counts the rest) instead of raising.  The
        engine's sharded dispatch applies the same semantics to
        batched fan-outs.
        """
        rect = validate_rects(np.asarray(rect, dtype=float).reshape(1, 4))[0]
        expires = (time.monotonic() + deadline
                   if deadline is not None else None)
        hit = [s for s in self.shards
               if overlaps(s.mbr[None, :], rect[None, :])[0]]
        parts: List[np.ndarray] = []
        completed = 0
        for i, s in enumerate(hit):
            if expires is not None and time.monotonic() >= expires and i:
                # budget spent: merge what we have, report the rest
                return PartialResult(
                    self._merge_parts(parts),
                    shards_dropped=len(hit) - completed,
                    shards_completed=completed)
            local = s.tree.window_query(rect, exact=exact)
            if local.size:
                parts.append(s.ids[local])
            completed += 1
        value = self._merge_parts(parts)
        if expires is not None and completed < len(hit):  # pragma: no cover
            return PartialResult(value, shards_dropped=len(hit) - completed,
                                 shards_completed=completed)
        return value

    @staticmethod
    def _merge_parts(parts: List[np.ndarray]) -> np.ndarray:
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def point_query(self, px: float, py: float) -> np.ndarray:
        """Global ids of lines passing through the point (always exact)."""
        return self.window_query([px, py, px, py], exact=True)

    def nearest(self, px: float, py: float) -> Tuple[int, float]:
        """Closest line to the point; ties broken by lowest global id.

        Shards are visited in order of increasing MBR lower bound and a
        shard is skipped once its lower bound exceeds the best distance
        found so far -- the cross-shard analogue of the branch-and-bound
        pruning inside each tree.
        """
        if not self.shards:
            raise ValueError("empty index has no nearest line")
        mbrs = self.shard_mbrs()
        pts = np.tile(np.array([[px, py]], dtype=float), (self.num_shards, 1))
        lb = points_rects_distance(pts, mbrs)
        scalar_nearest = (quadtree_nearest if self.family == "quadtree"
                          else rtree_nearest)
        best_d = np.inf
        best_id = -1
        for k in np.argsort(lb, kind="stable"):
            if lb[k] > best_d:
                break
            s = self.shards[int(k)]
            local, d = scalar_nearest(s.tree, px, py)
            gid = int(s.ids[local])
            if d < best_d or (d == best_d and gid < best_id):
                best_d = float(d)
                best_id = gid
        return best_id, best_d

    def join(self, other) -> np.ndarray:
        """Spatial join against another (sharded or plain) index."""
        return sharded_join(self, other)

    # -- batch planning (the engine's fan-out step) ----------------------

    def plan_windows(self, rects: np.ndarray) -> np.ndarray:
        """``(K, B)`` mask: shard k can hold hits of window b (MBR cull)."""
        rects = np.asarray(rects, dtype=float).reshape(-1, 4)
        mbrs = self.shard_mbrs()
        return ((mbrs[:, None, 0] <= rects[None, :, 2])
                & (rects[None, :, 0] <= mbrs[:, None, 2])
                & (mbrs[:, None, 1] <= rects[None, :, 3])
                & (rects[None, :, 1] <= mbrs[:, None, 3]))

    def plan_points(self, points: np.ndarray) -> np.ndarray:
        """``(K, B)`` mask: shard k's MBR contains point b (closed)."""
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        rects = np.column_stack([pts[:, 0], pts[:, 1], pts[:, 0], pts[:, 1]])
        return self.plan_windows(rects)

    def nearest_bounds(self, points: np.ndarray) -> np.ndarray:
        """``(K, B)`` point-to-shard-MBR lower bounds (0 when inside)."""
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        K, B = self.num_shards, pts.shape[0]
        if K == 0 or B == 0:
            return np.zeros((K, B))
        mbrs = self.shard_mbrs()
        flat_p = np.repeat(pts, K, axis=0)
        flat_r = np.tile(mbrs, (B, 1))
        return points_rects_distance(flat_p, flat_r).reshape(B, K).T

    def plan_nearest(self, points: np.ndarray) -> np.ndarray:
        """``(K, B)`` mask keeping shards that can beat the min-max bound.

        Every shard is non-empty, so the max corner distance of each
        shard MBR upper-bounds that shard's nearest answer; a shard
        whose lower bound exceeds the minimum upper bound over all
        shards cannot win for that query.
        """
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        K, B = self.num_shards, pts.shape[0]
        if K == 0 or B == 0:
            return np.zeros((K, B), dtype=bool)
        mbrs = self.shard_mbrs()
        flat_p = np.repeat(pts, K, axis=0)
        flat_r = np.tile(mbrs, (B, 1))
        lb = points_rects_distance(flat_p, flat_r).reshape(B, K).T
        ub = points_rects_max_distance(flat_p, flat_r).reshape(B, K).T
        return lb <= ub.min(axis=0)[None, :]

    def query_shard_batch(self, k: int, kind: str, payloads: np.ndarray,
                          exact: bool = True,
                          machine: Optional[Machine] = None,
                          flat: bool = False):
        """One shard's answers (in global ids) for a probe sub-batch.

        ``kind`` is ``"window"`` / ``"point"`` / ``"nearest"``; window
        and point results are per-query global id arrays, nearest
        results are a ``(global ids, distances)`` array pair over the
        whole sub-batch.  With ``flat`` the window/point answers come
        back as one ``(global ids, per-query counts)`` pair instead of
        a list of per-query arrays -- the merge-friendly layout the
        engine's fan-out uses.
        """
        s = self.shards[k]
        if kind == "nearest":
            batch_nearest = (batch_nearest_quadtree if self.family == "quadtree"
                             else batch_nearest_rtree)
            results = batch_nearest(s.tree, payloads, machine=machine)
            n = len(results)
            lids = np.fromiter((r[0] for r in results), dtype=np.int64,
                               count=n)
            dists = np.fromiter((r[1] for r in results), dtype=float, count=n)
            return s.ids[lids], dists
        if kind == "point":
            pts = np.asarray(payloads, dtype=float).reshape(-1, 2)
            payloads = np.column_stack([pts[:, 0], pts[:, 1],
                                        pts[:, 0], pts[:, 1]])
            exact = True  # exact degenerate windows (see module docstring)
        elif kind != "window":
            raise ValueError(f"unknown probe kind {kind!r}")
        batch_window = (batch_window_query_quadtree if self.family == "quadtree"
                        else batch_window_query_rtree)
        results = batch_window(s.tree, payloads, exact=exact, machine=machine)
        # one global-id gather over the concatenation beats a fancy
        # index per (typically tiny) per-query result array
        counts = np.fromiter((r.size for r in results), dtype=np.int64,
                             count=len(results))
        merged = (s.ids[np.concatenate(results)] if results
                  else np.zeros(0, dtype=np.int64))
        if flat:
            return merged, counts
        if not results:
            return []
        return np.split(merged, np.cumsum(counts)[:-1])

    # -- validation ------------------------------------------------------

    def check(self) -> None:
        """Raise AssertionError on any sharding invariant violation."""
        seen = (np.concatenate([s.ids for s in self.shards])
                if self.shards else np.zeros(0, dtype=np.int64))
        assert np.array_equal(np.sort(seen), np.arange(self.num_lines)), \
            "shard ids must partition the global id space"
        for s in self.shards:
            assert s.ids.size > 0, "empty shards must not be materialised"
            assert np.all(np.diff(s.ids) > 0), "shard ids must be ascending"
            segs = self.lines[s.ids]
            lo = np.minimum(segs[:, 0:2], segs[:, 2:4]).min(axis=0)
            hi = np.maximum(segs[:, 0:2], segs[:, 2:4]).max(axis=0)
            assert (s.mbr[0] <= lo[0] and s.mbr[1] <= lo[1]
                    and s.mbr[2] >= hi[0] and s.mbr[3] >= hi[1]), \
                "shard MBR must cover its segments"
            assert np.array_equal(s.tree.lines, segs), \
                "shard tree must index exactly the shard's segments"


def _segment_mbr(segs: np.ndarray) -> np.ndarray:
    lo = np.minimum(segs[:, 0:2], segs[:, 2:4]).min(axis=0)
    hi = np.maximum(segs[:, 0:2], segs[:, 2:4]).max(axis=0)
    return np.array([lo[0], lo[1], hi[0], hi[1]], dtype=float)


def build_sharded(lines: np.ndarray, domain: float, structure: str = "pmr",
                  shards: int = 4, ordering: str = "morton",
                  capacity: int = 8, min_fill: int = 2,
                  max_depth=None) -> ShardedIndex:
    """Space-sort, cut into ``shards`` ranges, and build one tree per range.

    Ranges are near-equal-count cuts of the curve-sorted segment order;
    a request for more shards than segments yields one shard per
    segment (empty ranges are never materialised).
    """
    if structure not in _FAMILY:
        raise ValueError(f"unknown structure {structure!r}; "
                         f"available: {sorted(_FAMILY)}")
    if ordering not in ORDERINGS:
        raise ValueError(f"unknown ordering {ordering!r}; choose from {ORDERINGS}")
    shards = int(shards)
    if shards < 1:
        raise ValueError("shards must be >= 1")
    lines = np.asarray(lines, dtype=np.float64).reshape(-1, 4)
    n = lines.shape[0]
    built: List[Shard] = []
    if n:
        keys = shard_keys(lines, domain, ordering)
        order = np.lexsort((np.arange(n), keys))
        cuts = [(i * n) // shards for i in range(shards + 1)]
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            if hi <= lo:
                continue
            ids = np.sort(order[lo:hi])  # ascending global ids (tie-break!)
            segs = lines[ids]
            if structure == "pmr":
                tree, _ = build_bucket_pmr(segs, domain, capacity,
                                           max_depth=max_depth)
            elif structure == "pm1":
                tree, _ = build_pm1(segs, domain, max_depth=max_depth)
            else:
                tree, _ = build_rtree(segs, min_fill, capacity)
            built.append(Shard(ids=ids, mbr=_segment_mbr(segs), tree=tree))
    return ShardedIndex(lines=lines, domain=float(domain), structure=structure,
                        ordering=ordering, shards=built)


def _build_shard_tree(segs: np.ndarray, domain: float, structure: str,
                      capacity: int, min_fill: int, max_depth):
    if structure == "pmr":
        tree, _ = build_bucket_pmr(segs, domain, capacity, max_depth=max_depth)
    elif structure == "pm1":
        tree, _ = build_pm1(segs, domain, max_depth=max_depth)
    else:
        tree, _ = build_rtree(segs, min_fill, capacity)
    return tree


def repair_sharded(index: ShardedIndex, new_lines: np.ndarray,
                   delete_ids, n_inserted: int,
                   shards: Optional[int] = None,
                   capacity: int = 8, min_fill: int = 2,
                   max_depth=None, domain: Optional[float] = None,
                   skew_factor: float = 4.0
                   ) -> Tuple[ShardedIndex, dict]:
    """Incrementally rebuild a sharded index after a mutation batch.

    ``new_lines`` must be the post-mutation segment array laid out as
    the survivors of ``index.lines`` (original order, rows named by
    ``delete_ids`` removed) followed by ``n_inserted`` appended rows --
    exactly the canonical delete-then-insert layout the registry's
    version commits produce.

    Untouched shards (no deleted segment, no insert routed into their
    curve range) are *reused*: the per-shard tree is shared with the
    old index and only the global-id array is remapped (the survivor
    remap is monotone, so ids stay ascending and the nearest tie-break
    invariant holds).  Shards with deletions, plus the shards whose
    curve range receives an inserted segment, are rebuilt from their
    surviving and incoming segments.  Answers are decomposition-
    independent (the PR-2 differential invariant), so a repaired index
    answers bit-identically to ``build_sharded`` on ``new_lines`` even
    though its cut points may differ.

    Falls back to one full :func:`build_sharded` -- returned with
    ``stats["full_rebuild"] = True`` -- when the repair cannot stay
    incremental: an empty old or new index, a domain change (inserted
    coordinates outside the old power-of-two space), a majority of
    shards touched, or post-repair skew (largest shard exceeding
    ``skew_factor`` times the balanced size) that would erode the
    fan-out's balance.

    Returns ``(repaired ShardedIndex, stats dict)``.
    """
    new_lines = np.asarray(new_lines, dtype=np.float64).reshape(-1, 4)
    n_old = index.num_lines
    n_new = new_lines.shape[0]
    n_inserted = int(n_inserted)
    del_ids = np.unique(np.asarray(delete_ids, dtype=np.int64).reshape(-1))
    if del_ids.size and (del_ids[0] < 0 or del_ids[-1] >= n_old):
        raise IndexError(f"delete ids out of range for {n_old} lines")
    if n_new != n_old - del_ids.size + n_inserted:
        raise ValueError(
            f"new_lines has {n_new} rows; expected "
            f"{n_old} - {del_ids.size} deleted + {n_inserted} inserted")
    K = int(shards) if shards is not None else max(index.num_shards, 1)
    dom = float(domain) if domain is not None else index.domain
    stats = {"full_rebuild": False, "shards_reused": 0, "shards_rebuilt": 0,
             "deleted": int(del_ids.size), "inserted": n_inserted}

    def full() -> Tuple[ShardedIndex, dict]:
        stats.update(full_rebuild=True, shards_reused=0, shards_rebuilt=0)
        rebuilt = build_sharded(new_lines, dom, structure=index.structure,
                                shards=K, ordering=index.ordering,
                                capacity=capacity, min_fill=min_fill,
                                max_depth=max_depth)
        return rebuilt, stats

    if index.num_shards == 0 or n_new == 0 or dom != index.domain:
        return full()

    # monotone survivor remap: old global id -> new global id (-1: deleted)
    keep = np.ones(n_old, dtype=bool)
    keep[del_ids] = False
    remap = np.cumsum(keep, dtype=np.int64) - 1
    remap[~keep] = -1

    # route each inserted segment to the shard whose curve range holds
    # its key; shard ranges are contiguous and ascending along the
    # curve, so the per-shard max key is a sorted routing table
    routed: List[List[int]] = [[] for _ in range(index.num_shards)]
    if n_inserted:
        old_keys = shard_keys(index.lines, dom, index.ordering)
        max_keys = np.array([old_keys[s.ids].max() for s in index.shards])
        ins_keys = shard_keys(new_lines[n_new - n_inserted:], dom,
                              index.ordering)
        target = np.minimum(np.searchsorted(max_keys, ins_keys, side="left"),
                            index.num_shards - 1)
        for j, k in enumerate(target):
            routed[int(k)].append(n_new - n_inserted + j)

    touched = [bool(np.any(~keep[s.ids])) or bool(routed[k])
               for k, s in enumerate(index.shards)]
    if sum(touched) > max(index.num_shards // 2, 1) \
            and index.num_shards > 1:
        return full()

    built: List[Shard] = []
    for k, s in enumerate(index.shards):
        if not touched[k]:
            built.append(Shard(ids=remap[s.ids], mbr=s.mbr, tree=s.tree))
            stats["shards_reused"] += 1
            continue
        ids = np.sort(np.concatenate([
            remap[s.ids][keep[s.ids]],
            np.asarray(routed[k], dtype=np.int64)]))
        if ids.size == 0:
            continue   # fully emptied range: drop, never materialise
        segs = new_lines[ids]
        tree = _build_shard_tree(segs, dom, index.structure,
                                 capacity, min_fill, max_depth)
        built.append(Shard(ids=ids, mbr=_segment_mbr(segs), tree=tree))
        stats["shards_rebuilt"] += 1
    if not built:
        return full()
    balanced = max(-(-n_new // K), 1)
    if n_new > K and max(s.ids.size for s in built) > skew_factor * balanced:
        return full()
    return (ShardedIndex(lines=new_lines, domain=dom,
                         structure=index.structure, ordering=index.ordering,
                         shards=built), stats)


def reshard(index: ShardedIndex, shards: Optional[int] = None,
            ordering: Optional[str] = None, capacity: int = 8,
            min_fill: int = 2, max_depth=None,
            skew_factor: float = 1.5,
            force: bool = False) -> Tuple[ShardedIndex, dict]:
    """Online re-shard entry point: re-cut into balanced curve ranges.

    The balance test is the one :func:`repair_sharded` uses for its
    full-rebuild fallback (largest shard vs. ``skew_factor`` times the
    balanced size), and the re-cut itself is the same equal-count
    ``build_sharded`` pass that fallback pays -- this entry point just
    makes the rebalance callable *without* a mutation, for the adaptive
    controller's skew watchdog.

    When the requested decomposition matches the current one and the
    cut is already within ``skew_factor`` of balanced, the index is
    returned unchanged with ``stats["resharded"] = False`` (a cheap
    no-op, no tree is rebuilt).  ``force=True`` re-cuts regardless --
    the caller is changing K or the ordering and needs the new
    decomposition even if the old one happened to be balanced.

    Returns ``(index, stats)`` where stats carries the before/after
    skew (``max shard size / balanced size``) so callers can log what
    the rebalance bought.
    """
    K = int(shards) if shards is not None else max(index.num_shards, 1)
    if K < 1:
        raise ValueError("shards must be >= 1")
    ordn = ordering if ordering is not None else index.ordering
    if ordn not in ORDERINGS:
        raise ValueError(f"unknown ordering {ordn!r}; choose from {ORDERINGS}")
    n = index.num_lines
    balanced = max(-(-n // K), 1)
    sizes = index.shard_sizes()
    skew = float(sizes.max()) / balanced if sizes.size else 0.0
    stats = {"resharded": False, "shards": K, "ordering": ordn,
             "skew_before": skew, "skew_after": skew}
    same = (K == index.num_shards and ordn == index.ordering)
    if same and not force and skew <= skew_factor:
        return index, stats
    rebuilt = build_sharded(index.lines, index.domain,
                            structure=index.structure, shards=K,
                            ordering=ordn, capacity=capacity,
                            min_fill=min_fill, max_depth=max_depth)
    new_sizes = rebuilt.shard_sizes()
    stats["resharded"] = True
    stats["skew_after"] = (float(new_sizes.max()) / balanced
                           if new_sizes.size else 0.0)
    return rebuilt, stats


# -- join -----------------------------------------------------------------


def _as_shard_list(index) -> List[Tuple[np.ndarray, np.ndarray, object]]:
    """Normalise a sharded or plain index into ``(ids, mbr, tree)`` rows."""
    if isinstance(index, ShardedIndex):
        return [(s.ids, s.mbr, s.tree) for s in index.shards]
    if isinstance(index, (Quadtree, RTree)):
        n = index.lines.shape[0]
        if n == 0:
            return []
        return [(np.arange(n, dtype=np.int64), _segment_mbr(index.lines),
                 index)]
    raise TypeError(f"cannot join {type(index).__name__}")


def sharded_join(a, b) -> np.ndarray:
    """All intersecting pairs between two (possibly sharded) indexes.

    Every shard pair with overlapping MBRs is joined with the matching
    tree join; local pairs are lifted to global ids and merged.  Each
    segment lives in exactly one shard per side, so a global pair can
    arise from exactly one shard pair -- the final ``np.unique`` only
    canonicalises the ordering.  Returns the same sorted, unique
    ``(k, 2)`` array as :func:`repro.structures.join.brute_join`.
    """
    rows: List[np.ndarray] = []
    for ids_a, mbr_a, tree_a in _as_shard_list(a):
        for ids_b, mbr_b, tree_b in _as_shard_list(b):
            if not overlaps(mbr_a[None, :], mbr_b[None, :])[0]:
                continue
            if isinstance(tree_a, Quadtree) and isinstance(tree_b, Quadtree):
                pairs = quadtree_join(tree_a, tree_b)
            elif isinstance(tree_a, RTree) and isinstance(tree_b, RTree):
                pairs = rtree_join(tree_a, tree_b)
            else:
                raise TypeError("joined indexes must share a tree family")
            if pairs.size:
                rows.append(np.column_stack([ids_a[pairs[:, 0]],
                                             ids_b[pairs[:, 1]]]))
    if not rows:
        return np.zeros((0, 2), dtype=np.int64)
    return np.unique(np.concatenate(rows), axis=0)
