"""Data-parallel R-tree construction (paper Section 5.3, Figures 39-44).

All lines are inserted simultaneously: one processor per line, one per
R-tree node.  Each round, every segment of the line processor set (and
every group of sibling nodes, level by level) counts its members with a
scan and reports to its node processor; any node over capacity ``M`` is
split with a Section 4.7 splitting algorithm, the chosen partition
realised by an unshuffle.  Node splits propagate upward -- an internal
node whose child count now exceeds ``M`` splits in the same round --
and a root split grows the tree by one level (Figure 42).  For ``n``
lines this takes O(log n) rounds of O(log n) primitives each (the sort
inside the sweep split), the paper's O(log**2 n) total.

The node hierarchy is kept as per-level parent-pointer arrays.  Sibling
groups are *derived* each round by a stable data-parallel sort on the
parent pointer -- the paper's "two sorts" per stage -- rather than by
physically permuting whole subtrees, which is exactly the irregular-
structure cost the Section 3.3 SAM discussion warns about.

The finished :class:`RTree` satisfies the order-(m, M) invariants of
Section 2.3: all leaves at the same level, every non-root node holding
between ``m`` and ``M`` entries, every node's rectangle the smallest
enclosing its members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional

import numpy as np

from ..geometry import rect as _rect
from ..geometry.clip import segments_intersect_rects
from ..geometry.segment import validate_segments
from ..machine import Machine, Segments, get_machine
from ..machine.broadcast import seg_broadcast, seg_reduce
from ..machine.sort import seg_rank
from ..primitives.rtree_split import mean_split, sweep_split
from .build import BuildTrace, RoundStats

__all__ = ["RTree", "build_rtree"]

SplitAlgo = Literal["sweep", "mean"]


@dataclass
class RTree:
    """A finished data-parallel R-tree of order ``(m, M)``.

    Level 0 holds the leaves; level ``height - 1`` is the root level
    (always a single node).  ``line_leaf[i]`` is the leaf holding line
    ``i``; ``level_parent[l][j]`` is the index (at level ``l+1``) of
    node ``j``'s parent.
    """

    lines: np.ndarray
    entry_bbox: np.ndarray
    line_leaf: np.ndarray
    level_mbr: List[np.ndarray]
    level_parent: List[np.ndarray]
    m: int
    M: int

    @property
    def height(self) -> int:
        """Number of node levels (1 = the root is a leaf)."""
        return len(self.level_mbr)

    @property
    def num_leaves(self) -> int:
        return int(self.level_mbr[0].shape[0])

    @property
    def num_nodes(self) -> int:
        return int(sum(mbr.shape[0] for mbr in self.level_mbr))

    @property
    def root_mbr(self) -> np.ndarray:
        return self.level_mbr[-1][0]

    def lines_in_leaf(self, leaf: int) -> np.ndarray:
        return np.flatnonzero(self.line_leaf == leaf)

    # -- queries ---------------------------------------------------------

    def window_query(self, rect, exact: bool = True, count_visits: bool = False):
        """Ids of lines intersecting the closed query rectangle.

        Descends level by level, visiting every node whose rectangle
        overlaps the window; because sibling rectangles may overlap, a
        line can be reachable through several paths -- the non-disjoint
        decomposition cost the paper contrasts with quadtrees
        (experiment C6 counts ``visits``).
        """
        rect = _rect.validate_rects(np.asarray(rect, dtype=float).reshape(1, 4))[0]
        visits = 1
        top = self.height - 1
        if not _rect.overlaps(self.level_mbr[top][0][None, :], rect[None, :])[0]:
            empty = np.zeros(0, dtype=np.int64)
            return (empty, visits) if count_visits else empty
        frontier = np.array([0], dtype=np.int64)
        for lvl in range(top - 1, -1, -1):
            mask = np.isin(self.level_parent[lvl], frontier)
            cand = np.flatnonzero(mask)
            hit = _rect.overlaps(self.level_mbr[lvl][cand],
                                 np.tile(rect, (cand.size, 1)))
            frontier = cand[hit]
            visits += int(cand.size)
        leaf_mask = np.isin(self.line_leaf, frontier)
        ids = np.flatnonzero(leaf_mask)
        if ids.size:
            hit = _rect.overlaps(self.entry_bbox[ids], np.tile(rect, (ids.size, 1)))
            ids = ids[hit]
        if exact and ids.size:
            keep = segments_intersect_rects(self.lines[ids], np.tile(rect, (ids.size, 1)))
            ids = ids[keep]
        return (ids, visits) if count_visits else ids

    def point_query(self, px: float, py: float, exact: bool = True,
                    count_visits: bool = False):
        """Lines whose bounding rectangle (or, with ``exact``, the line
        itself) contains the point."""
        r = np.array([px, py, px, py], dtype=float)
        return self.window_query(r, exact=exact, count_visits=count_visits)

    # -- quality metrics (experiments F6 / C7) -----------------------------

    def coverage(self, level: int = 0) -> float:
        """Total area of node rectangles at ``level`` (Guttman's goal)."""
        return float(_rect.area(self.level_mbr[level]).sum())

    def total_overlap(self, level: int = 0) -> float:
        """Sum of pairwise intersection areas at ``level`` (R*'s goal)."""
        mbr = self.level_mbr[level]
        k = mbr.shape[0]
        if k < 2:
            return 0.0
        ii, jj = np.triu_indices(k, 1)
        return float(_rect.intersection_area(mbr[ii], mbr[jj]).sum())

    # -- validation --------------------------------------------------------

    def check(self, strict_min_fill: bool = True) -> None:
        """Raise AssertionError on any order-(m, M) invariant violation.

        ``strict_min_fill=False`` skips the minimum-occupancy checks:
        the paper's O(1) mean split (algorithm 1) does not enforce the
        ``m`` lower bound, only the sweep split does.
        """
        n = self.lines.shape[0]
        h = self.height
        assert self.level_mbr[-1].shape[0] == 1, "root level must hold one node"
        assert len(self.level_parent) == h - 1
        # leaf occupancy
        counts = np.bincount(self.line_leaf, minlength=self.num_leaves)
        if h == 1:
            assert n <= self.M, "single-leaf tree over capacity"
        else:
            if strict_min_fill:
                assert counts.min(initial=self.m) >= self.m, "leaf under-filled"
            assert counts.min(initial=1) >= 1, "empty leaf"
            assert counts.max(initial=0) <= self.M, "leaf over capacity"
        # internal occupancy and rectangle tightness
        for lvl in range(h - 1):
            par = self.level_parent[lvl]
            k_up = self.level_mbr[lvl + 1].shape[0]
            ccount = np.bincount(par, minlength=k_up)
            if lvl + 1 == h - 1:
                assert ccount[0] >= 2, "internal root must have at least two children"
            elif strict_min_fill:
                assert ccount.min() >= self.m, "internal node under-filled"
            else:
                assert ccount.min() >= 1, "childless internal node"
            assert ccount.max() <= self.M, "internal node over capacity"
            # parent rect == union of child rects
            for u in range(k_up):
                members = self.level_mbr[lvl][par == u]
                want = np.array([members[:, 0].min(), members[:, 1].min(),
                                 members[:, 2].max(), members[:, 3].max()])
                np.testing.assert_allclose(self.level_mbr[lvl + 1][u], want)
        # leaf rect == union of entry rects
        for leaf in range(self.num_leaves):
            eb = self.entry_bbox[self.line_leaf == leaf]
            assert eb.size, "empty leaf"
            want = np.array([eb[:, 0].min(), eb[:, 1].min(),
                             eb[:, 2].max(), eb[:, 3].max()])
            np.testing.assert_allclose(self.level_mbr[0][leaf], want)

    def render(self) -> str:
        """Compact textual summary, one line per level."""
        rows = [f"RTree order=({self.m},{self.M}) height={self.height} "
                f"leaves={self.num_leaves} nodes={self.num_nodes} "
                f"entries={self.lines.shape[0]}"]
        for lvl in range(self.height - 1, -1, -1):
            mbr = self.level_mbr[lvl]
            rows.append(f"  level {lvl}: {mbr.shape[0]} nodes, "
                        f"coverage={_rect.area(mbr).sum():g}, "
                        f"overlap={self.total_overlap(lvl):g}")
        return "\n".join(rows)


def _grouped_view(parent_ids: np.ndarray, m: Machine) -> tuple[np.ndarray, Segments]:
    """Sort indices by parent (stable) and return the grouped descriptor.

    This is the per-stage sort of the paper's cost accounting: sibling
    groups are materialised as contiguous runs of the sorted view.
    """
    ranks = seg_rank(parent_ids, Segments.single(parent_ids.size), machine=m)
    view = np.empty(parent_ids.size, dtype=np.int64)
    view[ranks] = np.arange(parent_ids.size, dtype=np.int64)
    return view, Segments.from_ids(parent_ids[view])


def _group_mbrs(child_mbr: np.ndarray, parent_ids: np.ndarray, num_parents: int,
                m: Machine) -> np.ndarray:
    """MBR of every parent from its children's rectangles (scan reduce)."""
    view, grp = _grouped_view(parent_ids, m)
    sorted_mbr = child_mbr[view]
    cols = [
        seg_reduce(sorted_mbr[:, 0], grp, "min", machine=m),
        seg_reduce(sorted_mbr[:, 1], grp, "min", machine=m),
        seg_reduce(sorted_mbr[:, 2], grp, "max", machine=m),
        seg_reduce(sorted_mbr[:, 3], grp, "max", machine=m),
    ]
    out = np.column_stack(cols)
    owners = parent_ids[view][grp.heads]
    mbr = np.zeros((num_parents, 4))
    mbr[owners] = out
    return mbr


def _split_level(child_mbr: np.ndarray, parent_ids: np.ndarray, num_parents: int,
                 m_fill: int, M: int, algo: SplitAlgo,
                 m: Machine, fractional_fill: bool = True
                 ) -> tuple[np.ndarray, int, np.ndarray]:
    """Split every parent whose group exceeds ``M``.

    Returns ``(new_parent_ids, num_new_parents, split_mask)`` where
    right-half children of split parent ``u`` are reassigned to a fresh
    parent index, and ``split_mask`` (over old parent indices) marks who
    split.  The caller appends the new parents to the level above.
    """
    view, grp = _grouped_view(parent_ids, m)
    counts = grp.lengths
    owners = parent_ids[view][grp.heads]
    over = counts > M
    if not over.any():
        return parent_ids, num_parents, np.zeros(num_parents, dtype=bool)

    over_lines = seg_broadcast(over, grp, machine=m).astype(bool)
    sel = np.flatnonzero(over_lines)                   # sorted-view slots
    sub_sizes = counts[over]
    sub_seg = Segments.from_lengths(sub_sizes)
    sub_mbr = child_mbr[view[sel]]
    if algo == "sweep":
        choice = sweep_split(sub_mbr, sub_seg, min_fill=m_fill,
                             node_capacity=M if fractional_fill else None,
                             machine=m)
    elif algo == "mean":
        choice = mean_split(sub_mbr, sub_seg, machine=m)
    else:
        raise ValueError(f"unknown split algorithm {algo!r}")

    new_parent_ids = parent_ids.copy()
    split_owner = owners[over]                         # old parent index per split
    fresh = num_parents + np.arange(split_owner.size, dtype=np.int64)
    right_children = view[sel[choice.side]]
    owner_to_fresh = np.full(num_parents, -1, dtype=np.int64)
    owner_to_fresh[split_owner] = fresh
    m.record("permute", parent_ids.size)
    new_parent_ids[right_children] = owner_to_fresh[parent_ids[right_children]]

    split_mask = np.zeros(num_parents, dtype=bool)
    split_mask[split_owner] = True
    return new_parent_ids, num_parents + split_owner.size, split_mask


def build_rtree(lines: np.ndarray, m_fill: int = 2, M: int = 4,
                algo: SplitAlgo = "sweep", fractional_fill: bool = True,
                machine: Optional[Machine] = None) -> tuple[RTree, BuildTrace]:
    """Build the data-parallel R-tree of order ``(m_fill, M)``.

    Parameters
    ----------
    lines:
        ``(n, 4)`` segments; each becomes one leaf entry represented by
        its minimum bounding rectangle.
    m_fill, M:
        The R-tree order ``(m, M)`` with ``1 <= m <= M // 2`` (the
        paper's example uses (1, 3)).
    algo:
        Section 4.7 split selection: ``"sweep"`` (algorithm 2, default)
        or ``"mean"`` (algorithm 1).
    fractional_fill:
        Use the paper's split-legality rule -- each side receives "at
        least m/M of the lines" (default).  ``False`` substitutes the
        absolute-``m`` rule of sequential R-trees; the ablation bench
        shows this loses the O(log n) round bound (splits can peel
        min-fill-sized slivers instead of shrinking geometrically).
    """
    lines = validate_segments(lines)
    n = lines.shape[0]
    if not 1 <= m_fill <= M // 2:
        raise ValueError("order must satisfy 1 <= m <= M // 2")
    mach = machine or get_machine()

    entry_bbox = _rect.rects_from_segments(lines) if n else np.zeros((0, 4))
    line_leaf = np.zeros(n, dtype=np.int64)
    num_per_level: List[int] = [1]          # level 0 starts as the single root-leaf
    parent_arrays: List[np.ndarray] = []    # parent_arrays[l]: level l -> level l+1

    trace = BuildTrace()
    round_index = 0
    while n:
        changed = False
        splits_this_round = 0
        steps_before = mach.steps
        with mach.phase(f"round{round_index}"):
            # leaf level: lines are the children, leaves the parents
            line_leaf, new_count, split_mask = _split_level(
                entry_bbox, line_leaf, num_per_level[0], m_fill, M, algo, mach,
                fractional_fill)
            if split_mask.any():
                changed = True
                splits_this_round += int(split_mask.sum())
                num_per_level[0] = new_count
                if not parent_arrays:
                    if num_per_level == [new_count]:
                        # first root split: new root above the two leaves
                        parent_arrays.append(np.zeros(new_count, dtype=np.int64))
                        num_per_level.append(1)
                else:
                    # fresh leaves inherit the split leaf's parent
                    par = parent_arrays[0]
                    parent_arrays[0] = np.concatenate(
                        [par, par[np.flatnonzero(split_mask)]])

            # internal levels, bottom-up; a level's splits may overflow the next
            lvl = 0
            while lvl < len(parent_arrays):
                child_mbr = (_group_mbrs(entry_bbox, line_leaf, num_per_level[0], mach)
                             if lvl == 0 else
                             _group_mbrs(level_cache, parent_arrays[lvl - 1],
                                         num_per_level[lvl], mach))
                level_cache = child_mbr
                new_par, new_count, split_mask = _split_level(
                    child_mbr, parent_arrays[lvl], num_per_level[lvl + 1],
                    m_fill, M, algo, mach, fractional_fill)
                if split_mask.any():
                    changed = True
                    splits_this_round += int(split_mask.sum())
                    parent_arrays[lvl] = new_par
                    num_per_level[lvl + 1] = new_count
                    if lvl + 1 == len(parent_arrays):
                        if new_count > 1:
                            parent_arrays.append(np.zeros(new_count, dtype=np.int64))
                            num_per_level.append(1)
                    else:
                        par = parent_arrays[lvl + 1]
                        parent_arrays[lvl + 1] = np.concatenate(
                            [par, par[np.flatnonzero(split_mask)]])
                lvl += 1

        if changed:
            trace.rounds.append(RoundStats(round_index, splits_this_round, n,
                                           steps_before, mach.steps))
            round_index += 1
            if round_index > max(64, 2 * n + 4):
                raise RuntimeError("R-tree build failed to converge")
        else:
            break

    # materialise per-level MBRs bottom-up
    level_mbr: List[np.ndarray] = []
    if n:
        level_mbr.append(_group_mbrs(entry_bbox, line_leaf, num_per_level[0], mach))
        for lvl in range(len(parent_arrays)):
            level_mbr.append(_group_mbrs(level_mbr[lvl], parent_arrays[lvl],
                                         num_per_level[lvl + 1], mach))
    else:
        level_mbr.append(np.zeros((1, 4)))

    tree = RTree(lines, entry_bbox, line_leaf, level_mbr, parent_arrays, m_fill, M)
    return tree, trace
