"""Structure serialization: save/load the built indexes as ``.npz``.

Builds are deterministic but not free; a downstream user indexing a
large map wants to build once and reload.  Every structure serialises
to a single compressed NumPy archive with a format tag and version, and
loads back bit-identically (round-trip equality is a test invariant).
Sharded indexes (:class:`~repro.structures.sharded.ShardedIndex`)
flatten into the same archive: each shard's tree arrays are stored
under an ``s{i}_`` key prefix next to the shard's global id range, so
shard boundaries survive the round trip exactly.
"""

from __future__ import annotations

import io as _io
import os
from typing import Dict, Union

import numpy as np

from .quadblock import Quadtree
from .rtree import RTree
from .sharded import Shard, ShardedIndex

__all__ = ["save_structure", "load_structure"]

_FORMAT_VERSION = 2

PathLike = Union[str, os.PathLike, _io.IOBase]


def _tree_payload(tree, prefix: str = "") -> Dict[str, np.ndarray]:
    """Flatten one tree into archive entries under ``prefix``."""
    if isinstance(tree, Quadtree):
        return {
            f"{prefix}kind": np.array("quadtree"),
            f"{prefix}lines": tree.lines, f"{prefix}boxes": tree.boxes,
            f"{prefix}level": tree.level, f"{prefix}parent": tree.parent,
            f"{prefix}children": tree.children,
            f"{prefix}node_ptr": tree.node_ptr,
            f"{prefix}node_lines": tree.node_lines,
            f"{prefix}meta": np.array([tree.domain, float(tree.max_depth)]),
        }
    if isinstance(tree, RTree):
        payload = {
            f"{prefix}kind": np.array("rtree"),
            f"{prefix}lines": tree.lines,
            f"{prefix}entry_bbox": tree.entry_bbox,
            f"{prefix}line_leaf": tree.line_leaf,
            f"{prefix}meta": np.array([float(tree.m), float(tree.M),
                                       float(tree.height)]),
        }
        for i, mbr in enumerate(tree.level_mbr):
            payload[f"{prefix}mbr_{i}"] = mbr
        for i, par in enumerate(tree.level_parent):
            payload[f"{prefix}parent_{i}"] = par
        return payload
    raise TypeError(f"cannot serialise {type(tree).__name__}")


def _load_tree(data, prefix: str = ""):
    """Rebuild one tree from archive entries under ``prefix``."""
    kind = str(data[f"{prefix}kind"])
    if kind == "quadtree":
        domain, max_depth = data[f"{prefix}meta"]
        return Quadtree(
            lines=data[f"{prefix}lines"], boxes=data[f"{prefix}boxes"],
            level=data[f"{prefix}level"], parent=data[f"{prefix}parent"],
            children=data[f"{prefix}children"],
            node_ptr=data[f"{prefix}node_ptr"],
            node_lines=data[f"{prefix}node_lines"],
            domain=float(domain), max_depth=int(max_depth),
        )
    if kind == "rtree":
        m, M, height = (int(v) for v in data[f"{prefix}meta"])
        level_mbr = [data[f"{prefix}mbr_{i}"] for i in range(height)]
        level_parent = [data[f"{prefix}parent_{i}"] for i in range(height - 1)]
        return RTree(
            lines=data[f"{prefix}lines"],
            entry_bbox=data[f"{prefix}entry_bbox"],
            line_leaf=data[f"{prefix}line_leaf"], level_mbr=level_mbr,
            level_parent=level_parent, m=m, M=M,
        )
    raise ValueError(f"unknown structure kind {kind!r}")


def save_structure(tree, path: PathLike) -> None:
    """Serialise a :class:`Quadtree`, :class:`RTree`, or
    :class:`ShardedIndex` to ``path``.

    The file is a compressed ``.npz`` with a ``kind`` tag; scalar
    parameters travel in a small metadata vector.
    """
    if isinstance(tree, ShardedIndex):
        payload = {
            "kind": np.array("sharded"),
            "version": np.array([_FORMAT_VERSION]),
            "lines": tree.lines,
            "structure": np.array(tree.structure),
            "ordering": np.array(tree.ordering),
            "meta": np.array([tree.domain, float(tree.num_shards)]),
            "shard_mbrs": tree.shard_mbrs(),
        }
        for i, shard in enumerate(tree.shards):
            payload[f"s{i}_ids"] = shard.ids
            payload.update(_tree_payload(shard.tree, prefix=f"s{i}_"))
        np.savez_compressed(path, **payload)
        return
    payload = _tree_payload(tree)
    payload["version"] = np.array([_FORMAT_VERSION])
    np.savez_compressed(path, **payload)


def load_structure(path: PathLike):
    """Load a structure saved by :func:`save_structure`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"][0])
        if version > _FORMAT_VERSION:
            raise ValueError(f"file format v{version} is newer than this library")
        kind = str(data["kind"])
        if kind == "sharded":
            domain, num_shards = data["meta"]
            mbrs = data["shard_mbrs"]
            shards = [
                Shard(ids=data[f"s{i}_ids"], mbr=mbrs[i],
                      tree=_load_tree(data, prefix=f"s{i}_"))
                for i in range(int(num_shards))
            ]
            return ShardedIndex(
                lines=data["lines"], domain=float(domain),
                structure=str(data["structure"]),
                ordering=str(data["ordering"]), shards=shards,
            )
        return _load_tree(data)
