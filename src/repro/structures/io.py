"""Structure serialization: save/load the built indexes as ``.npz``.

Builds are deterministic but not free; a downstream user indexing a
large map wants to build once and reload.  Every structure serialises
to a single compressed NumPy archive with a format tag and version, and
loads back bit-identically (round-trip equality is a test invariant).
"""

from __future__ import annotations

import io as _io
import os
from typing import Union

import numpy as np

from .quadblock import Quadtree
from .rtree import RTree

__all__ = ["save_structure", "load_structure"]

_FORMAT_VERSION = 1

PathLike = Union[str, os.PathLike, _io.IOBase]


def save_structure(tree, path: PathLike) -> None:
    """Serialise a :class:`Quadtree` or :class:`RTree` to ``path``.

    The file is a compressed ``.npz`` with a ``kind`` tag; scalar
    parameters travel in a small metadata vector.
    """
    if isinstance(tree, Quadtree):
        np.savez_compressed(
            path,
            kind=np.array("quadtree"),
            version=np.array([_FORMAT_VERSION]),
            lines=tree.lines, boxes=tree.boxes, level=tree.level,
            parent=tree.parent, children=tree.children,
            node_ptr=tree.node_ptr, node_lines=tree.node_lines,
            meta=np.array([tree.domain, float(tree.max_depth)]),
        )
    elif isinstance(tree, RTree):
        payload = {
            "kind": np.array("rtree"),
            "version": np.array([_FORMAT_VERSION]),
            "lines": tree.lines,
            "entry_bbox": tree.entry_bbox,
            "line_leaf": tree.line_leaf,
            "meta": np.array([float(tree.m), float(tree.M),
                              float(tree.height)]),
        }
        for i, mbr in enumerate(tree.level_mbr):
            payload[f"mbr_{i}"] = mbr
        for i, par in enumerate(tree.level_parent):
            payload[f"parent_{i}"] = par
        np.savez_compressed(path, **payload)
    else:
        raise TypeError(f"cannot serialise {type(tree).__name__}")


def load_structure(path: PathLike):
    """Load a structure saved by :func:`save_structure`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"][0])
        if version > _FORMAT_VERSION:
            raise ValueError(f"file format v{version} is newer than this library")
        kind = str(data["kind"])
        if kind == "quadtree":
            domain, max_depth = data["meta"]
            return Quadtree(
                lines=data["lines"], boxes=data["boxes"], level=data["level"],
                parent=data["parent"], children=data["children"],
                node_ptr=data["node_ptr"], node_lines=data["node_lines"],
                domain=float(domain), max_depth=int(max_depth),
            )
        if kind == "rtree":
            m, M, height = (int(v) for v in data["meta"])
            level_mbr = [data[f"mbr_{i}"] for i in range(height)]
            level_parent = [data[f"parent_{i}"] for i in range(height - 1)]
            return RTree(
                lines=data["lines"], entry_bbox=data["entry_bbox"],
                line_leaf=data["line_leaf"], level_mbr=level_mbr,
                level_parent=level_parent, m=m, M=M,
            )
        raise ValueError(f"unknown structure kind {kind!r}")
