"""Structure serialization: save/load the built indexes as ``.npz``.

Builds are deterministic but not free; a downstream user indexing a
large map wants to build once and reload.  Every structure serialises
to a single compressed NumPy archive with a format tag and version, and
loads back bit-identically (round-trip equality is a test invariant).
Sharded indexes (:class:`~repro.structures.sharded.ShardedIndex`)
flatten into the same archive: each shard's tree arrays are stored
under an ``s{i}_`` key prefix next to the shard's global id range, so
shard boundaries survive the round trip exactly.

Format v3 embeds integrity metadata in the archive itself: a SHA-256
``checksum`` over every payload entry (key, dtype, shape, bytes) and a
``params`` JSON blob carrying the build parameters.  This is the one
integrity format shared by standalone :func:`save_structure` files and
the :mod:`repro.store` disk cache -- a store manifest records the same
checksum that the archive carries, so either side can detect torn or
tampered files.  v2 archives (no checksum) still load.
"""

from __future__ import annotations

import hashlib
import io as _io
import json
import os
from typing import Dict, Optional, Union

import numpy as np

from .quadblock import Quadtree
from .rtree import RTree
from .sharded import Shard, ShardedIndex

__all__ = ["save_structure", "load_structure", "payload_checksum",
           "structure_payload", "payload_to_tree", "inspect_structure",
           "IntegrityError"]

_FORMAT_VERSION = 3

#: archive entries excluded from the checksum (the checksum itself)
_UNCHECKED = frozenset({"checksum"})

PathLike = Union[str, os.PathLike, _io.IOBase]


class IntegrityError(ValueError):
    """A stored archive failed its embedded checksum."""


def payload_checksum(payload: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the archive payload, independent of entry order.

    Hashes each entry's key, dtype, shape, and raw bytes in sorted key
    order, skipping the ``checksum`` entry itself, so the digest can be
    recomputed from a loaded archive and compared to the stored one.
    """
    h = hashlib.sha256()
    for key in sorted(payload):
        if key in _UNCHECKED:
            continue
        arr = np.asarray(payload[key])
        h.update(key.encode())
        h.update(b"\x00")
        h.update(arr.dtype.str.encode())
        h.update(str(arr.shape).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _tree_payload(tree, prefix: str = "") -> Dict[str, np.ndarray]:
    """Flatten one tree into archive entries under ``prefix``."""
    if isinstance(tree, Quadtree):
        return {
            f"{prefix}kind": np.array("quadtree"),
            f"{prefix}lines": tree.lines, f"{prefix}boxes": tree.boxes,
            f"{prefix}level": tree.level, f"{prefix}parent": tree.parent,
            f"{prefix}children": tree.children,
            f"{prefix}node_ptr": tree.node_ptr,
            f"{prefix}node_lines": tree.node_lines,
            f"{prefix}meta": np.array([tree.domain, float(tree.max_depth)]),
        }
    if isinstance(tree, RTree):
        payload = {
            f"{prefix}kind": np.array("rtree"),
            f"{prefix}lines": tree.lines,
            f"{prefix}entry_bbox": tree.entry_bbox,
            f"{prefix}line_leaf": tree.line_leaf,
            f"{prefix}meta": np.array([float(tree.m), float(tree.M),
                                       float(tree.height)]),
        }
        for i, mbr in enumerate(tree.level_mbr):
            payload[f"{prefix}mbr_{i}"] = mbr
        for i, par in enumerate(tree.level_parent):
            payload[f"{prefix}parent_{i}"] = par
        return payload
    raise TypeError(f"cannot serialise {type(tree).__name__}")


def _load_tree(data, prefix: str = ""):
    """Rebuild one tree from archive entries under ``prefix``."""
    kind = str(data[f"{prefix}kind"])
    if kind == "quadtree":
        domain, max_depth = data[f"{prefix}meta"]
        return Quadtree(
            lines=data[f"{prefix}lines"], boxes=data[f"{prefix}boxes"],
            level=data[f"{prefix}level"], parent=data[f"{prefix}parent"],
            children=data[f"{prefix}children"],
            node_ptr=data[f"{prefix}node_ptr"],
            node_lines=data[f"{prefix}node_lines"],
            domain=float(domain), max_depth=int(max_depth),
        )
    if kind == "rtree":
        m, M, height = (int(v) for v in data[f"{prefix}meta"])
        level_mbr = [data[f"{prefix}mbr_{i}"] for i in range(height)]
        level_parent = [data[f"{prefix}parent_{i}"] for i in range(height - 1)]
        return RTree(
            lines=data[f"{prefix}lines"],
            entry_bbox=data[f"{prefix}entry_bbox"],
            line_leaf=data[f"{prefix}line_leaf"], level_mbr=level_mbr,
            level_parent=level_parent, m=m, M=M,
        )
    raise ValueError(f"unknown structure kind {kind!r}")


def _full_payload(tree, params: Optional[dict]) -> Dict[str, np.ndarray]:
    if isinstance(tree, ShardedIndex):
        payload = {
            "kind": np.array("sharded"),
            "lines": tree.lines,
            "structure": np.array(tree.structure),
            "ordering": np.array(tree.ordering),
            "meta": np.array([tree.domain, float(tree.num_shards)]),
            "shard_mbrs": tree.shard_mbrs(),
        }
        for i, shard in enumerate(tree.shards):
            payload[f"s{i}_ids"] = shard.ids
            payload.update(_tree_payload(shard.tree, prefix=f"s{i}_"))
    else:
        payload = _tree_payload(tree)
    payload["version"] = np.array([_FORMAT_VERSION])
    payload["params"] = np.array(
        json.dumps(params or {}, sort_keys=True, default=str))
    return payload


def structure_payload(tree, params: Optional[dict] = None
                      ) -> Dict[str, np.ndarray]:
    """The archive payload of a tree as an in-memory dict of arrays.

    Exactly what :func:`save_structure` would write (format tag,
    params JSON, flattened tree arrays -- no checksum entry), so the
    same entries can be published into a shared-memory arena instead of
    a file and reconstructed with :func:`payload_to_tree`.
    """
    return _full_payload(tree, params)


def payload_to_tree(data):
    """Rebuild a structure from a payload mapping.

    ``data`` maps archive entry names to arrays -- a loaded ``.npz``,
    a :func:`structure_payload` dict, or the zero-copy views of an
    attached shared-memory block (:func:`repro.shm.attach_payload`).
    In the shared-memory case the returned tree's arrays alias the
    mapped pages: the warm-load happens *in place*, no copy.
    """
    kind = str(data["kind"])
    if kind == "sharded":
        domain, num_shards = data["meta"]
        mbrs = data["shard_mbrs"]
        shards = [
            Shard(ids=data[f"s{i}_ids"], mbr=mbrs[i],
                  tree=_load_tree(data, prefix=f"s{i}_"))
            for i in range(int(num_shards))
        ]
        return ShardedIndex(
            lines=data["lines"], domain=float(domain),
            structure=str(data["structure"]),
            ordering=str(data["ordering"]), shards=shards,
        )
    return _load_tree(data)


def save_structure(tree, path: PathLike,
                   params: Optional[dict] = None) -> str:
    """Serialise a :class:`Quadtree`, :class:`RTree`, or
    :class:`ShardedIndex` to ``path``; returns the payload checksum.

    The file is a compressed ``.npz`` with a ``kind`` tag; scalar
    parameters travel in a small metadata vector.  ``params`` (e.g.
    the build parameters that produced the tree) is embedded as a JSON
    blob, and a SHA-256 ``checksum`` over the whole payload lets
    :func:`load_structure` detect corruption.
    """
    payload = _full_payload(tree, params)
    checksum = payload_checksum(payload)
    payload["checksum"] = np.array(checksum)
    np.savez_compressed(path, **payload)
    return checksum


def load_structure(path: PathLike, verify: bool = True):
    """Load a structure saved by :func:`save_structure`.

    For v3+ archives the embedded checksum is recomputed and compared
    (set ``verify=False`` to skip); a mismatch raises
    :class:`IntegrityError`.  v2 archives carry no checksum and load
    as before.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"][0])
        if version > _FORMAT_VERSION:
            raise ValueError(f"file format v{version} is newer than this library")
        if version >= 3 and verify:
            if "checksum" not in data.files:
                raise IntegrityError("v3 archive is missing its checksum")
            want = str(data["checksum"])
            got = payload_checksum({k: data[k] for k in data.files})
            if got != want:
                raise IntegrityError(
                    f"archive checksum mismatch: stored {want[:12]}..., "
                    f"recomputed {got[:12]}...")
        return payload_to_tree(data)


def inspect_structure(path: PathLike) -> Dict[str, object]:
    """Cheap metadata peek: version, kind, params, stored checksum.

    Reads only the small entries -- no tree arrays are materialised
    and no checksum is verified (use :func:`load_structure` for that).
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"][0])
        out: Dict[str, object] = {
            "version": version,
            "kind": str(data["kind"]),
            "checksum": (str(data["checksum"])
                         if "checksum" in data.files else None),
            "params": (json.loads(str(data["params"]))
                       if "params" in data.files else {}),
        }
        return out
