"""Sort-Tile-Recursive (STR) bulk loading for R-trees.

A natural companion to the paper's simultaneous-insertion build: STR
(Leutenegger et al.) packs a static entry set into an R-tree with two
sorts per level -- sort by x, slice into vertical runs of
``ceil(sqrt(n/M))`` tiles, sort each run by y, cut into nodes of ``M``.
It is *also* a data-parallel-friendly algorithm (sorts and segmented
cuts), so it serves as the quality/throughput comparator for the
Section 5.3 build in the split-algorithm benchmarks.

The result reuses :class:`~repro.structures.rtree.RTree`; trailing nodes
may hold fewer than ``m`` entries (packing does not enforce a minimum
fill), so validate with ``check(strict_min_fill=False)``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..geometry import rect as _rect
from ..geometry.segment import validate_segments
from ..machine import Machine, get_machine
from .rtree import RTree

__all__ = ["build_rtree_str"]


def _pack_level(rects: np.ndarray, M: int, m: Machine) -> np.ndarray:
    """Group rectangles into STR nodes; returns the per-rect node index."""
    n = rects.shape[0]
    nodes_needed = int(np.ceil(n / M))
    slices = int(np.ceil(np.sqrt(nodes_needed)))
    per_slice = slices * M

    cx = 0.5 * (rects[:, 0] + rects[:, 2])
    cy = 0.5 * (rects[:, 1] + rects[:, 3])
    m.record("sort", n)
    by_x = np.argsort(cx, kind="stable")
    slice_id = np.arange(n) // per_slice
    m.record("sort", n)
    order = by_x[np.lexsort((cy[by_x], slice_id))]
    node_of_sorted = np.arange(n) // M
    node = np.empty(n, dtype=np.int64)
    node[order] = node_of_sorted
    return node


def build_rtree_str(lines: np.ndarray, m_fill: int = 2, M: int = 8,
                    machine: Optional[Machine] = None) -> RTree:
    """Bulk-load an R-tree over ``lines`` with Sort-Tile-Recursive packing.

    Two sorts per level, O(log_M n) levels.  Leaves (and internal nodes)
    are packed to exactly ``M`` entries except the trailing ones, giving
    near-minimal node counts and typically less overlap than dynamic
    insertion.
    """
    lines = validate_segments(lines)
    if not 1 <= m_fill <= M // 2:
        raise ValueError("order must satisfy 1 <= m <= M // 2")
    mach = machine or get_machine()
    n = lines.shape[0]
    entry_bbox = _rect.rects_from_segments(lines) if n else np.zeros((0, 4))

    if n == 0:
        return RTree(lines, entry_bbox, np.zeros(0, np.int64),
                     [np.zeros((1, 4))], [], m_fill, M)

    def level_mbrs(child_mbr: np.ndarray, owner: np.ndarray, count: int) -> np.ndarray:
        out = np.empty((count, 4))
        for c in range(4):
            op = np.minimum if c < 2 else np.maximum
            acc = np.full(count, np.inf if c < 2 else -np.inf)
            getattr(np, "minimum" if c < 2 else "maximum").at(acc, owner, child_mbr[:, c])
            out[:, c] = acc
        return out

    line_leaf = _pack_level(entry_bbox, M, mach)
    num_leaves = int(line_leaf.max()) + 1
    level_mbr: List[np.ndarray] = [level_mbrs(entry_bbox, line_leaf, num_leaves)]
    level_parent: List[np.ndarray] = []

    while level_mbr[-1].shape[0] > M:
        cur = level_mbr[-1]
        parent = _pack_level(cur, M, mach)
        count = int(parent.max()) + 1
        level_parent.append(parent)
        level_mbr.append(level_mbrs(cur, parent, count))
    if level_mbr[-1].shape[0] > 1:
        count = level_mbr[-1].shape[0]
        level_parent.append(np.zeros(count, dtype=np.int64))
        level_mbr.append(level_mbrs(level_mbr[-1],
                                    np.zeros(count, dtype=np.int64), 1))

    return RTree(lines, entry_bbox, line_leaf, level_mbr, level_parent,
                 m_fill, M)
