"""Data-parallel batch query processing.

The companion papers ([Hoel94b]'s "performance of data-parallel spatial
operations") process query *sets*, not single probes: one processor per
(query, node) pair, expanding level-synchronously.  This module provides
that style of bulk evaluation for the window query on both tree
families:

* the frontier is a vector of (query id, node id) pairs;
* each round every pair tests its query window against its node's
  rectangle in one whole-array step and expands into children;
* at the leaves, candidate (query, line) pairs are verified with one
  vectorised exact test.

Results are identical to looping the scalar ``window_query`` (a test
invariant) but the work is whole-array per tree level -- O(height)
vector steps for any number of queries.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..geometry.clip import segments_intersect_rects
from ..geometry.rect import overlaps, validate_rects
from ..machine import Machine, get_machine
from .quadblock import Quadtree
from .rtree import RTree

__all__ = ["batch_window_query_quadtree", "batch_window_query_rtree"]


def _pack_results(qid: np.ndarray, lid: np.ndarray, num_queries: int
                  ) -> List[np.ndarray]:
    """Group verified (query, line) pairs into per-query id arrays."""
    out: List[np.ndarray] = []
    order = np.lexsort((lid, qid))
    qid = qid[order]
    lid = lid[order]
    bounds = np.searchsorted(qid, np.arange(num_queries + 1))
    for q in range(num_queries):
        ids = lid[bounds[q]:bounds[q + 1]]
        out.append(np.unique(ids))
    return out


def batch_window_query_quadtree(tree: Quadtree, rects, exact: bool = True,
                                machine: Optional[Machine] = None
                                ) -> List[np.ndarray]:
    """All window queries against a quadtree in O(height) vector rounds."""
    rects = validate_rects(np.asarray(rects, dtype=float).reshape(-1, 4))
    m = machine or get_machine()
    nq = rects.shape[0]

    q_frontier = np.arange(nq, dtype=np.int64)
    n_frontier = np.zeros(nq, dtype=np.int64)
    hit_q: List[np.ndarray] = []
    hit_l: List[np.ndarray] = []
    while q_frontier.size:
        node_boxes = tree.boxes[n_frontier]
        m.record("elementwise", q_frontier.size)
        alive = overlaps(node_boxes, rects[q_frontier])
        q_frontier = q_frontier[alive]
        n_frontier = n_frontier[alive]
        if not q_frontier.size:
            break
        is_leaf = tree.children[n_frontier, 0] < 0
        # leaves: emit candidate (query, line) pairs
        leaf_q = q_frontier[is_leaf]
        leaf_n = n_frontier[is_leaf]
        if leaf_q.size:
            counts = (tree.node_ptr[leaf_n + 1] - tree.node_ptr[leaf_n])
            reps = np.repeat(np.arange(leaf_q.size), counts)
            starts = np.repeat(tree.node_ptr[leaf_n], counts)
            offsets = np.arange(reps.size) - np.repeat(
                np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
            lines = tree.node_lines[starts + offsets]
            hit_q.append(leaf_q[reps])
            hit_l.append(lines)
        # internal: expand into all four children
        int_q = q_frontier[~is_leaf]
        int_n = n_frontier[~is_leaf]
        m.record("permute", int_q.size * 4)
        q_frontier = np.repeat(int_q, 4)
        n_frontier = tree.children[int_n].reshape(-1)

    if not hit_q:
        return [np.zeros(0, dtype=np.int64) for _ in range(nq)]
    qid = np.concatenate(hit_q)
    lid = np.concatenate(hit_l)
    if exact and qid.size:
        m.record("elementwise", qid.size)
        keep = segments_intersect_rects(tree.lines[lid], rects[qid])
        qid = qid[keep]
        lid = lid[keep]
    # exact=False returns every candidate from the reached leaves,
    # matching the scalar window_query's filter-step semantics.
    return _pack_results(qid, lid, nq)


def batch_window_query_rtree(tree: RTree, rects, exact: bool = True,
                             machine: Optional[Machine] = None
                             ) -> List[np.ndarray]:
    """All window queries against an R-tree in O(height) vector rounds."""
    rects = validate_rects(np.asarray(rects, dtype=float).reshape(-1, 4))
    m = machine or get_machine()
    nq = rects.shape[0]
    top = tree.height - 1

    q_frontier = np.arange(nq, dtype=np.int64)
    n_frontier = np.zeros(nq, dtype=np.int64)
    for level in range(top, 0, -1):
        m.record("elementwise", q_frontier.size)
        alive = overlaps(tree.level_mbr[level][n_frontier], rects[q_frontier])
        q_frontier = q_frontier[alive]
        n_frontier = n_frontier[alive]
        if not q_frontier.size:
            break
        # expand to the children of every surviving node
        par = tree.level_parent[level - 1]
        order = np.argsort(par, kind="stable")
        sorted_par = par[order]
        starts = np.searchsorted(sorted_par, n_frontier, side="left")
        ends = np.searchsorted(sorted_par, n_frontier, side="right")
        counts = ends - starts
        m.record("permute", int(counts.sum()))
        reps = np.repeat(np.arange(q_frontier.size), counts)
        offsets = np.arange(reps.size) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        q_frontier = q_frontier[reps]
        n_frontier = order[np.repeat(starts, counts) + offsets]

    if not q_frontier.size:
        return [np.zeros(0, dtype=np.int64) for _ in range(nq)]
    # leaf level: test the surviving (query, leaf) pairs, then entries
    m.record("elementwise", q_frontier.size)
    alive = overlaps(tree.level_mbr[0][n_frontier], rects[q_frontier])
    q_frontier = q_frontier[alive]
    n_frontier = n_frontier[alive]

    leaf_order = np.argsort(tree.line_leaf, kind="stable")
    sorted_leaf = tree.line_leaf[leaf_order]
    starts = np.searchsorted(sorted_leaf, n_frontier, side="left")
    ends = np.searchsorted(sorted_leaf, n_frontier, side="right")
    counts = ends - starts
    reps = np.repeat(np.arange(q_frontier.size), counts)
    offsets = np.arange(reps.size) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
    qid = q_frontier[reps]
    lid = leaf_order[np.repeat(starts, counts) + offsets]
    if qid.size:
        m.record("elementwise", qid.size)
        keep = overlaps(tree.entry_bbox[lid], rects[qid])
        qid = qid[keep]
        lid = lid[keep]
    if exact and qid.size:
        m.record("elementwise", qid.size)
        keep = segments_intersect_rects(tree.lines[lid], rects[qid])
        qid = qid[keep]
        lid = lid[keep]
    return _pack_results(qid, lid, nq)
