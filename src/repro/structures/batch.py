"""Data-parallel batch query processing.

The companion papers ([Hoel94b]'s "performance of data-parallel spatial
operations") process query *sets*, not single probes: one processor per
(query, node) pair, expanding level-synchronously.  This module provides
that style of bulk evaluation for the window query on both tree
families:

* the frontier is a vector of (query id, node id) pairs;
* each round every pair tests its query window against its node's
  rectangle in one whole-array step and expands into children;
* at the leaves, candidate (query, line) pairs are verified with one
  vectorised exact test.

Results are identical to looping the scalar ``window_query`` (a test
invariant) but the work is whole-array per tree level -- O(height)
vector steps for any number of queries.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..geometry.clip import segments_intersect_rects
from ..geometry.distance import (
    points_rects_distance,
    points_rects_max_distance,
    points_segments_distance,
)
from ..geometry.rect import contains_point_halfopen, overlaps, validate_rects
from ..machine import Machine, get_machine
from .quadblock import Quadtree
from .rtree import RTree

__all__ = [
    "batch_window_query_quadtree",
    "batch_window_query_rtree",
    "batch_point_query_quadtree",
    "batch_point_query_rtree",
    "batch_nearest_quadtree",
    "batch_nearest_rtree",
]


def _pack_results(qid: np.ndarray, lid: np.ndarray, num_queries: int
                  ) -> List[np.ndarray]:
    """Group verified (query, line) pairs into per-query id arrays."""
    out: List[np.ndarray] = []
    order = np.lexsort((lid, qid))
    qid = qid[order]
    lid = lid[order]
    bounds = np.searchsorted(qid, np.arange(num_queries + 1))
    for q in range(num_queries):
        ids = lid[bounds[q]:bounds[q + 1]]
        out.append(np.unique(ids))
    return out


def _expand_csr(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat indices ``[starts[i] .. starts[i]+counts[i])`` concatenated.

    The gather pattern every frontier expansion shares: one output slot
    per (pair, child) combination, computed with whole-array ops only.
    """
    reps = np.repeat(np.arange(counts.size), counts)
    offsets = np.arange(reps.size) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
    return np.repeat(starts, counts) + offsets


def _leaf_pairs(tree: Quadtree, leaf_q: np.ndarray, leaf_n: np.ndarray):
    """Candidate (query, line) pairs from the lines stored at each leaf."""
    counts = tree.node_ptr[leaf_n + 1] - tree.node_ptr[leaf_n]
    idx = _expand_csr(tree.node_ptr[leaf_n], counts)
    return np.repeat(leaf_q, counts), tree.node_lines[idx]


def batch_window_query_quadtree(tree: Quadtree, rects, exact: bool = True,
                                machine: Optional[Machine] = None
                                ) -> List[np.ndarray]:
    """All window queries against a quadtree in O(height) vector rounds."""
    rects = validate_rects(np.asarray(rects, dtype=float).reshape(-1, 4))
    m = machine or get_machine()
    nq = rects.shape[0]

    q_frontier = np.arange(nq, dtype=np.int64)
    n_frontier = np.zeros(nq, dtype=np.int64)
    hit_q: List[np.ndarray] = []
    hit_l: List[np.ndarray] = []
    while q_frontier.size:
        node_boxes = tree.boxes[n_frontier]
        m.record("elementwise", q_frontier.size)
        alive = overlaps(node_boxes, rects[q_frontier])
        q_frontier = q_frontier[alive]
        n_frontier = n_frontier[alive]
        if not q_frontier.size:
            break
        is_leaf = tree.children[n_frontier, 0] < 0
        # leaves: emit candidate (query, line) pairs
        leaf_q = q_frontier[is_leaf]
        leaf_n = n_frontier[is_leaf]
        if leaf_q.size:
            counts = (tree.node_ptr[leaf_n + 1] - tree.node_ptr[leaf_n])
            reps = np.repeat(np.arange(leaf_q.size), counts)
            starts = np.repeat(tree.node_ptr[leaf_n], counts)
            offsets = np.arange(reps.size) - np.repeat(
                np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
            lines = tree.node_lines[starts + offsets]
            hit_q.append(leaf_q[reps])
            hit_l.append(lines)
        # internal: expand into all four children
        int_q = q_frontier[~is_leaf]
        int_n = n_frontier[~is_leaf]
        m.record("permute", int_q.size * 4)
        q_frontier = np.repeat(int_q, 4)
        n_frontier = tree.children[int_n].reshape(-1)

    if not hit_q:
        return [np.zeros(0, dtype=np.int64) for _ in range(nq)]
    qid = np.concatenate(hit_q)
    lid = np.concatenate(hit_l)
    if exact and qid.size:
        m.record("elementwise", qid.size)
        keep = segments_intersect_rects(tree.lines[lid], rects[qid])
        qid = qid[keep]
        lid = lid[keep]
    # exact=False returns every candidate from the reached leaves,
    # matching the scalar window_query's filter-step semantics.
    return _pack_results(qid, lid, nq)


def batch_window_query_rtree(tree: RTree, rects, exact: bool = True,
                             machine: Optional[Machine] = None
                             ) -> List[np.ndarray]:
    """All window queries against an R-tree in O(height) vector rounds."""
    rects = validate_rects(np.asarray(rects, dtype=float).reshape(-1, 4))
    m = machine or get_machine()
    nq = rects.shape[0]
    top = tree.height - 1

    q_frontier = np.arange(nq, dtype=np.int64)
    n_frontier = np.zeros(nq, dtype=np.int64)
    for level in range(top, 0, -1):
        m.record("elementwise", q_frontier.size)
        alive = overlaps(tree.level_mbr[level][n_frontier], rects[q_frontier])
        q_frontier = q_frontier[alive]
        n_frontier = n_frontier[alive]
        if not q_frontier.size:
            break
        # expand to the children of every surviving node
        par = tree.level_parent[level - 1]
        order = np.argsort(par, kind="stable")
        sorted_par = par[order]
        starts = np.searchsorted(sorted_par, n_frontier, side="left")
        ends = np.searchsorted(sorted_par, n_frontier, side="right")
        counts = ends - starts
        m.record("permute", int(counts.sum()))
        reps = np.repeat(np.arange(q_frontier.size), counts)
        offsets = np.arange(reps.size) - np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        q_frontier = q_frontier[reps]
        n_frontier = order[np.repeat(starts, counts) + offsets]

    if not q_frontier.size:
        return [np.zeros(0, dtype=np.int64) for _ in range(nq)]
    # leaf level: test the surviving (query, leaf) pairs, then entries
    m.record("elementwise", q_frontier.size)
    alive = overlaps(tree.level_mbr[0][n_frontier], rects[q_frontier])
    q_frontier = q_frontier[alive]
    n_frontier = n_frontier[alive]
    if not q_frontier.size:
        return [np.zeros(0, dtype=np.int64) for _ in range(nq)]

    leaf_order = np.argsort(tree.line_leaf, kind="stable")
    sorted_leaf = tree.line_leaf[leaf_order]
    starts = np.searchsorted(sorted_leaf, n_frontier, side="left")
    ends = np.searchsorted(sorted_leaf, n_frontier, side="right")
    counts = ends - starts
    reps = np.repeat(np.arange(q_frontier.size), counts)
    offsets = np.arange(reps.size) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
    qid = q_frontier[reps]
    lid = leaf_order[np.repeat(starts, counts) + offsets]
    if qid.size:
        m.record("elementwise", qid.size)
        keep = overlaps(tree.entry_bbox[lid], rects[qid])
        qid = qid[keep]
        lid = lid[keep]
    if exact and qid.size:
        m.record("elementwise", qid.size)
        keep = segments_intersect_rects(tree.lines[lid], rects[qid])
        qid = qid[keep]
        lid = lid[keep]
    return _pack_results(qid, lid, nq)


# -- point probes ---------------------------------------------------------


def batch_point_query_quadtree(tree: Quadtree, points, strict: bool = True,
                               machine: Optional[Machine] = None
                               ) -> List[np.ndarray]:
    """All point queries against a quadtree in O(height) vector rounds.

    Each query descends to the unique leaf containing its point
    (half-open block membership, as in :meth:`Quadtree.find_leaf`) and
    returns the ids of the lines stored there.  With ``strict`` a point
    outside the domain raises :class:`ValueError` like the scalar query;
    otherwise it yields an empty result.
    """
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    m = machine or get_machine()
    nq = pts.shape[0]
    if nq == 0:
        return []
    m.record("elementwise", nq)
    inside = contains_point_halfopen(np.broadcast_to(tree.boxes[0], (nq, 4)),
                                     pts[:, 0], pts[:, 1], tree.domain)
    if strict and not inside.all():
        raise ValueError(f"{int((~inside).sum())} point(s) outside the domain")
    q_frontier = np.flatnonzero(inside).astype(np.int64)
    n_frontier = np.zeros(q_frontier.size, dtype=np.int64)
    hit_q: List[np.ndarray] = []
    hit_l: List[np.ndarray] = []
    while q_frontier.size:
        is_leaf = tree.children[n_frontier, 0] < 0
        leaf_q = q_frontier[is_leaf]
        if leaf_q.size:
            qid, lid = _leaf_pairs(tree, leaf_q, n_frontier[is_leaf])
            hit_q.append(qid)
            hit_l.append(lid)
        int_q = q_frontier[~is_leaf]
        int_n = n_frontier[~is_leaf]
        if not int_q.size:
            break
        # expand into all four children, keep the one holding the point
        m.record("permute", int_q.size * 4)
        cq = np.repeat(int_q, 4)
        cn = tree.children[int_n].reshape(-1)
        m.record("elementwise", cq.size)
        keep = contains_point_halfopen(tree.boxes[cn], pts[cq, 0], pts[cq, 1],
                                       tree.domain)
        q_frontier = cq[keep]
        n_frontier = cn[keep]
    if not hit_q:
        return [np.zeros(0, dtype=np.int64) for _ in range(nq)]
    return _pack_results(np.concatenate(hit_q), np.concatenate(hit_l), nq)


def batch_point_query_rtree(tree: RTree, points, exact: bool = True,
                            machine: Optional[Machine] = None
                            ) -> List[np.ndarray]:
    """All point queries against an R-tree, as degenerate window queries.

    Mirrors :meth:`RTree.point_query`, which delegates to
    ``window_query`` on the rectangle ``[px, py, px, py]``.
    """
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    if pts.shape[0] == 0:
        return []
    rects = np.column_stack([pts[:, 0], pts[:, 1], pts[:, 0], pts[:, 1]])
    return batch_window_query_rtree(tree, rects, exact=exact, machine=machine)


# -- nearest probes -------------------------------------------------------


def _reduce_nearest(qid: np.ndarray, lid: np.ndarray, dist: np.ndarray,
                    nq: int) -> List[Optional[tuple]]:
    """Per-query ``(line id, distance)`` minimising distance then id."""
    out: List[Optional[tuple]] = [None] * nq
    if not qid.size:
        return out
    best = np.full(nq, np.inf)
    np.minimum.at(best, qid, dist)
    at_best = dist <= best[qid]
    qid = qid[at_best]
    lid = lid[at_best]
    order = np.lexsort((lid, qid))
    qid = qid[order]
    lid = lid[order]
    firsts = np.searchsorted(qid, np.arange(nq))
    for q in range(nq):
        if firsts[q] < qid.size and qid[firsts[q]] == q:
            out[q] = (int(lid[firsts[q]]), float(best[q]))
    return out


def _subtree_counts(tree: Quadtree) -> np.ndarray:
    """Number of q-edges stored in each node's subtree (levels upward)."""
    counts = np.diff(tree.node_ptr).astype(np.int64)
    if tree.num_nodes <= 1:
        return counts
    for lev in range(int(tree.level.max()), 0, -1):
        sel = np.flatnonzero(tree.level == lev)
        np.add.at(counts, tree.parent[sel], counts[sel])
    return counts


def batch_nearest_quadtree(tree: Quadtree, points,
                           machine: Optional[Machine] = None) -> List[tuple]:
    """All nearest-line queries against a quadtree, level-synchronously.

    The batched branch-and-bound analogue of
    :func:`repro.structures.nearest.quadtree_nearest`: the frontier is a
    vector of (query, node) pairs; each round prunes pairs whose block
    lies farther than the query's current upper bound (min-max corner
    distance over non-empty subtrees, tightened by exact distances at
    reached leaves) and expands survivors into their non-empty children.
    Returns ``(line id, distance)`` per query -- identical, ties
    included, to the scalar search.
    """
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    m = machine or get_machine()
    nq = pts.shape[0]
    if nq == 0:
        return []
    if tree.lines.shape[0] == 0:
        raise ValueError("empty tree has no nearest line")
    occupancy = _subtree_counts(tree)
    bound = np.full(nq, np.inf)
    hit_q: List[np.ndarray] = []
    hit_l: List[np.ndarray] = []
    hit_d: List[np.ndarray] = []
    q_frontier = np.arange(nq, dtype=np.int64)
    n_frontier = np.zeros(nq, dtype=np.int64)
    while q_frontier.size:
        # prune: a block farther than the query's bound cannot help
        m.record("elementwise", q_frontier.size)
        lb = points_rects_distance(pts[q_frontier], tree.boxes[n_frontier])
        ub = points_rects_max_distance(pts[q_frontier], tree.boxes[n_frontier])
        m.record("scan", q_frontier.size)
        np.minimum.at(bound, q_frontier, ub)
        alive = lb <= bound[q_frontier]
        q_frontier = q_frontier[alive]
        n_frontier = n_frontier[alive]
        if not q_frontier.size:
            break
        is_leaf = tree.children[n_frontier, 0] < 0
        leaf_q = q_frontier[is_leaf]
        if leaf_q.size:
            qid, lid = _leaf_pairs(tree, leaf_q, n_frontier[is_leaf])
            if qid.size:
                m.record("elementwise", qid.size)
                d = points_segments_distance(pts[qid], tree.lines[lid])
                m.record("scan", qid.size)
                np.minimum.at(bound, qid, d)
                hit_q.append(qid)
                hit_l.append(lid)
                hit_d.append(d)
        int_q = q_frontier[~is_leaf]
        int_n = n_frontier[~is_leaf]
        if not int_q.size:
            break
        # expand into the non-empty children only
        m.record("permute", int_q.size * 4)
        cq = np.repeat(int_q, 4)
        cn = tree.children[int_n].reshape(-1)
        nonempty = occupancy[cn] > 0
        q_frontier = cq[nonempty]
        n_frontier = cn[nonempty]
    qid = np.concatenate(hit_q) if hit_q else np.zeros(0, dtype=np.int64)
    lid = np.concatenate(hit_l) if hit_l else np.zeros(0, dtype=np.int64)
    dist = np.concatenate(hit_d) if hit_d else np.zeros(0)
    out = _reduce_nearest(qid, lid, dist, nq)
    assert all(r is not None for r in out), "non-empty tree must answer"
    return out  # type: ignore[return-value]


def batch_nearest_rtree(tree: RTree, points,
                        machine: Optional[Machine] = None) -> List[tuple]:
    """All nearest-line queries against an R-tree, level-synchronously.

    Same frontier scheme as :func:`batch_nearest_quadtree`; every R-tree
    node is non-empty by construction, so the min-max corner distance of
    each visited rectangle is always a valid upper bound.  Returns
    ``(line id, distance)`` per query, identical to the scalar search.
    """
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    m = machine or get_machine()
    nq = pts.shape[0]
    if nq == 0:
        return []
    if tree.lines.shape[0] == 0:
        raise ValueError("empty tree has no nearest line")
    top = tree.height - 1
    bound = np.full(nq, np.inf)
    q_frontier = np.arange(nq, dtype=np.int64)
    n_frontier = np.zeros(nq, dtype=np.int64)
    for level in range(top, 0, -1):
        boxes = tree.level_mbr[level][n_frontier]
        m.record("elementwise", q_frontier.size)
        lb = points_rects_distance(pts[q_frontier], boxes)
        ub = points_rects_max_distance(pts[q_frontier], boxes)
        m.record("scan", q_frontier.size)
        np.minimum.at(bound, q_frontier, ub)
        alive = lb <= bound[q_frontier]
        q_frontier = q_frontier[alive]
        n_frontier = n_frontier[alive]
        if not q_frontier.size:
            break
        par = tree.level_parent[level - 1]
        order = np.argsort(par, kind="stable")
        starts = np.searchsorted(par[order], n_frontier, side="left")
        counts = np.searchsorted(par[order], n_frontier, side="right") - starts
        m.record("permute", int(counts.sum()))
        q_frontier = np.repeat(q_frontier, counts)
        n_frontier = order[_expand_csr(starts, counts)]
    if not q_frontier.size:  # pragma: no cover - non-empty trees always reach leaves
        raise ValueError("tree holds no lines")
    # leaf level: prune leaves, then their entries, then exact distances
    m.record("elementwise", q_frontier.size)
    boxes = tree.level_mbr[0][n_frontier]
    lb = points_rects_distance(pts[q_frontier], boxes)
    ub = points_rects_max_distance(pts[q_frontier], boxes)
    m.record("scan", q_frontier.size)
    np.minimum.at(bound, q_frontier, ub)
    alive = lb <= bound[q_frontier]
    q_frontier = q_frontier[alive]
    n_frontier = n_frontier[alive]

    leaf_order = np.argsort(tree.line_leaf, kind="stable")
    sorted_leaf = tree.line_leaf[leaf_order]
    starts = np.searchsorted(sorted_leaf, n_frontier, side="left")
    counts = np.searchsorted(sorted_leaf, n_frontier, side="right") - starts
    qid = np.repeat(q_frontier, counts)
    lid = leaf_order[_expand_csr(starts, counts)]
    if qid.size:
        m.record("elementwise", qid.size)
        entry_lb = points_rects_distance(pts[qid], tree.entry_bbox[lid])
        keep = entry_lb <= bound[qid]
        qid = qid[keep]
        lid = lid[keep]
    if qid.size:
        m.record("elementwise", qid.size)
        dist = points_segments_distance(pts[qid], tree.lines[lid])
    else:  # pragma: no cover - some entry always survives its own bound
        dist = np.zeros(0)
    out = _reduce_nearest(qid, lid, dist, nq)
    assert all(r is not None for r in out), "non-empty tree must answer"
    return out  # type: ignore[return-value]
