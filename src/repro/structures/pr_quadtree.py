"""Data-parallel PR quadtree construction (paper Section 1, [Best92]).

The related-work survey credits Bestul with data-parallel algorithms
"for building and manipulating ... PR quadtrees" -- the point-record
member of the quadtree family [Oren82, Ande83].  A (bucket) PR quadtree
subdivides space until every leaf holds at most ``capacity`` points
(classically one).

The build is a simplified two-stage node split: points obey **half-open
membership**, so -- unlike line segments -- they are never cloned; each
round is a capacity check, one unshuffle per stage, and the same node
bookkeeping as the line quadtrees.  Shape is trivially order-independent.

Coincident points can never be separated, so as with the bucket PMR the
subdivision is capped at the maximal resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry.generators import check_power_of_two
from ..geometry.rect import contains_point_halfopen, overlaps, validate_rects
from ..machine import Machine, Segments, get_machine
from ..machine.broadcast import seg_broadcast
from ..primitives.capacity import overflowing_nodes
from ..primitives.unshuffle import unshuffle
from .build import BuildTrace, RoundStats
from .quadblock import NodeTable

__all__ = ["PRQuadtree", "build_pr_quadtree"]


@dataclass
class PRQuadtree:
    """A finished PR quadtree: disjoint blocks, each holding few points.

    The layout mirrors :class:`~repro.structures.quadblock.Quadtree`
    with points instead of q-edges; since membership is half-open, every
    point lives in exactly one leaf (no replication).
    """

    points: np.ndarray
    boxes: np.ndarray
    level: np.ndarray
    parent: np.ndarray
    children: np.ndarray
    node_ptr: np.ndarray
    node_points: np.ndarray
    domain: float
    max_depth: int

    @property
    def num_nodes(self) -> int:
        return int(self.boxes.shape[0])

    @property
    def is_leaf(self) -> np.ndarray:
        return self.children[:, 0] < 0

    @property
    def num_leaves(self) -> int:
        return int(np.count_nonzero(self.is_leaf))

    @property
    def height(self) -> int:
        return int(self.level.max(initial=0))

    def points_in_node(self, node: int) -> np.ndarray:
        return self.node_points[self.node_ptr[node]:self.node_ptr[node + 1]]

    def find_leaf(self, px: float, py: float) -> int:
        hits = contains_point_halfopen(self.boxes, px, py, self.domain) & self.is_leaf
        idx = np.flatnonzero(hits)
        if idx.size != 1:
            raise ValueError(f"point ({px}, {py}) outside the domain")
        return int(idx[0])

    def window_query(self, rect) -> np.ndarray:
        """Ids of points inside the closed query rectangle."""
        rect = validate_rects(np.asarray(rect, dtype=float).reshape(1, 4))[0]
        stack = [0]
        out = []
        while stack:
            node = stack.pop()
            if not overlaps(self.boxes[node][None, :], rect[None, :])[0]:
                continue
            ch = self.children[node]
            if ch[0] < 0:
                ids = self.points_in_node(node)
                if ids.size:
                    p = self.points[ids]
                    inside = ((rect[0] <= p[:, 0]) & (p[:, 0] <= rect[2]) &
                              (rect[1] <= p[:, 1]) & (p[:, 1] <= rect[3]))
                    out.append(ids[inside])
            else:
                stack.extend(int(c) for c in ch)
        return np.sort(np.concatenate(out)) if out else np.zeros(0, np.int64)

    def check(self, capacity: int) -> None:
        """Validate disjoint point assignment and the capacity rule."""
        n = self.points.shape[0]
        counted = np.zeros(n, dtype=np.int64)
        for leaf in np.flatnonzero(self.is_leaf):
            ids = self.points_in_node(int(leaf))
            counted[ids] += 1
            box = self.boxes[leaf]
            inside = contains_point_halfopen(
                np.tile(box, (ids.size, 1)), self.points[ids, 0],
                self.points[ids, 1], self.domain)
            assert inside.all(), f"leaf {leaf} holds a point outside its block"
            if self.level[leaf] < self.max_depth:
                assert ids.size <= capacity, f"leaf {leaf} over capacity"
        assert np.all(counted == 1), "points must belong to exactly one leaf"

    def decomposition_key(self) -> list:
        out = []
        for leaf in np.flatnonzero(self.is_leaf):
            ids = self.points_in_node(int(leaf))
            out.append((tuple(self.boxes[leaf].tolist()),
                        tuple(sorted(ids.tolist()))))
        out.sort()
        return out


def build_pr_quadtree(points: np.ndarray, domain: int, capacity: int = 1,
                      max_depth: Optional[int] = None,
                      machine: Optional[Machine] = None
                      ) -> tuple[PRQuadtree, BuildTrace]:
    """Build the (bucket) PR quadtree of 2-D points over ``domain``.

    Each round all overflowing blocks split simultaneously; points pick
    their quadrant with two elementwise comparisons and regroup with two
    unshuffles (no cloning -- half-open membership is disjoint).
    """
    domain = check_power_of_two(domain)
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.size and points.shape[1] != 2:
        raise ValueError("points must have shape (n, 2)")
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    if points.size and (points.min() < 0 or points.max() > domain):
        raise ValueError("points must lie inside [0, domain]^2")
    depth_cap = int(np.log2(domain)) if max_depth is None else int(max_depth)

    m = machine or get_machine()
    table = NodeTable(domain)
    n = points.shape[0]
    trace = BuildTrace()
    if n == 0:
        boxes, level, parent, children = table.freeze()
        return PRQuadtree(points, boxes, level, parent, children,
                          np.zeros(2, np.int64), np.zeros(0, np.int64),
                          float(domain), depth_cap), trace

    pid = np.arange(n, dtype=np.int64)
    pts = points.copy()
    segments = Segments.single(n)
    seg_node = np.zeros(1, dtype=np.int64)
    round_index = 0
    while True:
        node_levels = np.asarray([table.level[i] for i in seg_node])
        over = overflowing_nodes(segments, capacity, machine=m)
        split_flags = over & (node_levels < depth_cap)
        if not split_flags.any():
            break
        steps_before = m.steps
        with m.phase(f"round{round_index}"):
            node_boxes = np.vstack([table.boxes[i] for i in seg_node])
            boxes_b = np.column_stack([
                seg_broadcast(node_boxes[:, c], segments, machine=m)
                for c in range(4)])
            splitting = seg_broadcast(split_flags, segments, machine=m).astype(bool)
            cy = 0.5 * (boxes_b[:, 1] + boxes_b[:, 3])
            cx = 0.5 * (boxes_b[:, 0] + boxes_b[:, 2])
            m.record("elementwise", n)

            side1 = (pts[:, 1] >= cy) & splitting
            m.record("elementwise", n)
            res = unshuffle(side1, pts[:, 0], pts[:, 1], pid, cx, splitting, side1,
                            segments=segments, machine=m)
            pts = np.column_stack(res.arrays[0:2])
            pid = res.arrays[2]
            cx = res.arrays[3]
            splitting = res.arrays[4].astype(bool)
            side1 = res.arrays[5].astype(bool)
            seg1 = Segments.from_ids(segments.ids * 2 + side1)

            side2 = (pts[:, 0] >= cx) & splitting
            m.record("elementwise", n)
            res = unshuffle(side2, pts[:, 0], pts[:, 1], pid, side1, side2,
                            segments=seg1, machine=m)
            pts = np.column_stack(res.arrays[0:2])
            pid = res.arrays[2]
            side1 = res.arrays[3].astype(bool)
            side2 = res.arrays[4].astype(bool)
            seg2 = Segments.from_ids(seg1.ids * 2 + side2)

        # node-table update, mirroring the line builders
        children_of = {}
        for s in np.flatnonzero(split_flags):
            children_of[int(seg_node[s])] = table.split(int(seg_node[s]))
        # positions never leave their original segment during an unshuffle,
        # so the old positional ids still name each element's parent segment
        heads = seg2.heads
        parent_seg = segments.ids[heads]
        child_code = 2 * side1[heads].astype(np.int64) + side2[heads]
        new_seg_node = np.empty(seg2.nseg, dtype=np.int64)
        for j in range(seg2.nseg):
            parent_node = int(seg_node[int(parent_seg[j])])
            if split_flags[int(parent_seg[j])]:
                new_seg_node[j] = children_of[parent_node][int(child_code[j])]
            else:
                new_seg_node[j] = parent_node
        segments = seg2
        seg_node = new_seg_node
        trace.rounds.append(RoundStats(round_index, int(split_flags.sum()), n,
                                       steps_before, m.steps))
        round_index += 1
        if round_index > depth_cap + 1:
            raise RuntimeError("PR build failed to terminate within the depth cap")

    boxes, level, parent, children = table.freeze()
    k = boxes.shape[0]
    counts = np.zeros(k, dtype=np.int64)
    counts[seg_node] = segments.lengths
    node_ptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(counts, out=node_ptr[1:])
    node_points = np.empty(n, dtype=np.int64)
    for s, sl in enumerate(segments.slices()):
        node = int(seg_node[s])
        node_points[node_ptr[node]:node_ptr[node + 1]] = pid[sl]

    tree = PRQuadtree(points, boxes, level, parent, children,
                      node_ptr, node_points, float(domain), depth_cap)
    return tree, trace
