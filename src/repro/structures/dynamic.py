"""Dynamic maintenance of the bucket PMR quadtree (paper Section 2.2).

The paper describes deletion for the PMR family: remove the line from
every block it intersects, then merge a block with its siblings when
their combined occupancy falls below the splitting threshold, applying
the merge recursively.  Because the bucket PMR's shape is a pure
function of its line set, the merged result must coincide exactly with
a fresh build over the surviving lines -- which is how the test suite
validates :func:`delete_lines`.

Insertion enjoys the same determinism: inserting lines and re-splitting
overflowing buckets lands, by definition, on the fresh-build shape, so
:func:`insert_lines` is specified (and implemented) as the canonical
rebuild.  Both functions return the id remapping from the new tree's
line indices back to the caller's.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..baselines.seq_pm1 import pm1_node_must_split
from ..machine import Machine
from .bucket_pmr import build_bucket_pmr
from .quadblock import Quadtree

__all__ = ["delete_lines", "insert_lines", "pm1_delete_lines"]


def delete_lines(tree: Quadtree, ids, capacity: int,
                 machine: Optional[Machine] = None) -> Tuple[Quadtree, np.ndarray]:
    """Delete lines from a bucket PMR quadtree, merging sparse blocks.

    Parameters
    ----------
    tree:
        A bucket PMR quadtree (from :func:`build_bucket_pmr`).
    ids:
        Line ids to remove.
    capacity:
        The tree's bucket capacity (the merge threshold).

    Returns
    -------
    (new_tree, survivors):
        The merged tree over the remaining lines (re-indexed 0..k-1) and
        the array mapping new ids to the original ones.

    The result is structurally identical to rebuilding from scratch on
    the survivors -- the determinism that makes the bucket variant safe
    for simultaneous updates.
    """
    ids = np.asarray(ids, dtype=np.int64)
    n = tree.lines.shape[0]
    if ids.size and (ids.min() < 0 or ids.max() >= n):
        raise IndexError("line id out of range")
    drop = np.zeros(n, dtype=bool)
    drop[ids] = True
    survivors = np.flatnonzero(~drop)
    remap = np.full(n, -1, dtype=np.int64)
    remap[survivors] = np.arange(survivors.size)

    # step 1: remove the deleted q-edges from every leaf (a pack per CSR)
    k = tree.num_nodes
    new_lists: list[np.ndarray] = []
    for node in range(k):
        held = tree.lines_in_node(node)
        new_lists.append(remap[held[~drop[held]]])

    def mergeable(node: int, union: np.ndarray) -> bool:
        return union.size <= capacity

    is_leaf, new_lists = _merge_bottom_up(tree, new_lists, mergeable)

    new_tree = _rebuild_from(tree, survivors, is_leaf, new_lists)
    return new_tree, survivors


def _merge_bottom_up(tree: Quadtree, new_lists, mergeable):
    """Recursive sibling merging, deepest parents first.

    A parent absorbs its four leaf children when ``mergeable(parent,
    union_of_child_lines)`` holds; processing by decreasing level lets
    merges cascade upward in one pass (the paper's "merging process is
    recursively reapplied").
    """
    is_leaf = (tree.children[:, 0] < 0).copy()
    order = np.argsort(tree.level)[::-1]
    for node in order:
        ch = tree.children[node]
        if ch[0] < 0 or not all(is_leaf[c] for c in ch):
            continue
        union = np.unique(np.concatenate([new_lists[c] for c in ch])) \
            if any(new_lists[c].size for c in ch) else np.zeros(0, np.int64)
        if mergeable(int(node), union):
            new_lists[node] = union
            for c in ch:
                new_lists[c] = np.zeros(0, np.int64)
            is_leaf[node] = True
    return is_leaf, new_lists


def _rebuild_from(tree: Quadtree, survivors: np.ndarray, is_leaf: np.ndarray,
                  new_lists) -> Quadtree:
    """Reassemble dense node arrays keeping only reachable nodes."""
    k = tree.num_nodes
    keep_node = np.zeros(k, dtype=bool)
    stack = [0]
    while stack:
        node = stack.pop()
        keep_node[node] = True
        if not is_leaf[node]:
            stack.extend(int(c) for c in tree.children[node])
    new_index = np.full(k, -1, dtype=np.int64)
    new_index[keep_node] = np.arange(int(keep_node.sum()))

    kept = np.flatnonzero(keep_node)
    boxes = tree.boxes[kept]
    level = tree.level[kept]
    parent = np.where(tree.parent[kept] >= 0, new_index[tree.parent[kept]], -1)
    children = np.full((kept.size, 4), -1, dtype=np.int64)
    for new_i, old in enumerate(kept):
        if not is_leaf[old]:
            children[new_i] = new_index[tree.children[old]]

    counts = np.array([new_lists[old].size for old in kept], dtype=np.int64)
    node_ptr = np.zeros(kept.size + 1, dtype=np.int64)
    np.cumsum(counts, out=node_ptr[1:])
    node_lines = (np.concatenate([new_lists[old] for old in kept])
                  if counts.sum() else np.zeros(0, np.int64))

    return Quadtree(tree.lines[survivors], boxes, level, parent, children,
                    node_ptr, node_lines, tree.domain, tree.max_depth)


def pm1_delete_lines(tree: Quadtree, ids,
                     machine: Optional[Machine] = None) -> Tuple[Quadtree, np.ndarray]:
    """Delete lines from a PM1 quadtree, merging blocks the rule releases.

    A parent absorbs its leaf children when the Section 4.5 criteria no
    longer require it to be split -- e.g. after deletions leave a single
    q-edge, or leave only lines sharing one vertex.  As with the bucket
    PMR, determinism makes "identical to a fresh build on the
    survivors" the correctness condition (and the test).
    """
    ids = np.asarray(ids, dtype=np.int64)
    n = tree.lines.shape[0]
    if ids.size and (ids.min() < 0 or ids.max() >= n):
        raise IndexError("line id out of range")
    drop = np.zeros(n, dtype=bool)
    drop[ids] = True
    survivors = np.flatnonzero(~drop)
    remap = np.full(n, -1, dtype=np.int64)
    remap[survivors] = np.arange(survivors.size)

    new_lists = []
    for node in range(tree.num_nodes):
        held = tree.lines_in_node(node)
        new_lists.append(remap[held[~drop[held]]])

    surviving_lines = tree.lines[survivors]

    def mergeable(node: int, union: np.ndarray) -> bool:
        return not pm1_node_must_split(surviving_lines, union,
                                       tree.boxes[node], tree.domain)

    is_leaf, new_lists = _merge_bottom_up(tree, new_lists, mergeable)
    new_tree = _rebuild_from(tree, survivors, is_leaf, new_lists)
    return new_tree, survivors


def insert_lines(tree: Quadtree, new_lines: np.ndarray, capacity: int,
                 machine: Optional[Machine] = None) -> Tuple[Quadtree, np.ndarray]:
    """Insert lines into a bucket PMR quadtree.

    Shape-determinism makes the canonical rebuild the specification of
    incremental insertion; the returned id map sends the new tree's line
    indices to ``0..n-1`` for the original lines followed by
    ``n..n+k-1`` for the inserted ones.
    """
    new_lines = np.atleast_2d(np.asarray(new_lines, dtype=float))
    if new_lines.shape[1] != 4:
        raise ValueError("new_lines must have shape (k, 4)")
    combined = np.vstack([tree.lines, new_lines]) if tree.lines.size else new_lines
    rebuilt, _ = build_bucket_pmr(combined, int(tree.domain), capacity,
                                  max_depth=tree.max_depth, machine=machine)
    return rebuilt, np.arange(combined.shape[0], dtype=np.int64)
