"""Data-parallel bucket PMR quadtree construction (paper Section 5.2).

In the data-parallel environment every line is inserted simultaneously,
so the classic PMR quadtree's split-once rule -- whose result depends on
insertion order (Figure 34) -- is replaced by the **bucket** PMR rule:
an overflowing block splits repeatedly until every sub-bucket holds at
most ``capacity`` lines or the maximal resolution is reached.  The
resulting shape is *independent of insertion order*, which is exactly
why the paper adopts it.

Each round is a capacity check (Section 4.4) followed by the
simultaneous node split (Section 4.6); a node at the maximal depth is
left alone even when over capacity, like node 9 in Figure 38.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..machine import Machine, Segments
from ..primitives.capacity import overflowing_nodes
from .build import BuildTrace, build_quadtree
from .quadblock import Quadtree

__all__ = ["build_bucket_pmr", "BucketPMRQuadtree", "occupancy_bound_ok"]

BucketPMRQuadtree = Quadtree  # the bucket PMR result type is the generic quadtree


def build_bucket_pmr(lines: np.ndarray, domain: int, capacity: int,
                     max_depth: Optional[int] = None,
                     machine: Optional[Machine] = None) -> tuple[Quadtree, BuildTrace]:
    """Build the data-parallel bucket PMR quadtree.

    Parameters
    ----------
    lines:
        ``(n, 4)`` segments inside ``[0, domain]^2``.
    domain:
        Space side, a power of two.
    capacity:
        Maximal bucket occupancy ``b``; blocks above it split (until
        ``max_depth``).
    max_depth:
        The quadtree's maximal height (Figure 4 uses 3 on the 8x8
        space); defaults to the 1x1-block resolution.
    """
    if capacity < 1:
        raise ValueError("bucket capacity must be at least 1")

    def rule(segs_xy: np.ndarray, segments: Segments, node_boxes: np.ndarray,
             node_levels: np.ndarray, m: Machine) -> np.ndarray:
        return overflowing_nodes(segments, capacity, machine=m)

    return build_quadtree(lines, domain, rule, max_depth=max_depth, machine=machine)


def occupancy_bound_ok(tree: Quadtree, capacity: int) -> bool:
    """Check the paper's occupancy bound (Section 2.2).

    Below the maximal depth, a bucket's occupancy never exceeds
    ``capacity``; buckets *at* the maximal depth may hold any number.
    (The classical PMR bound ``threshold + depth`` applies to the
    split-once rule; the bucket variant is strictly tighter because it
    splits until the bound holds.)
    """
    counts = np.diff(tree.node_ptr)
    leaf = tree.is_leaf
    below_cap = tree.level < tree.max_depth
    return bool(np.all(counts[leaf & below_cap] <= capacity))
