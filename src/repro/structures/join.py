"""Spatial join of two line maps (paper Section 6's cited application).

The conclusion notes the Section 4 primitives "have been used in the
implementation of other data-parallel spatial operations such as
polygonization and spatial join [Hoel93, Hoel94a, Hoel94b]".  This
module provides the join -- all pairs ``(i, j)`` with line ``i`` of map
A intersecting line ``j`` of map B -- through each of the built
structures, plus the brute-force oracle:

* :func:`quadtree_join` -- simultaneous descent of two quadtrees over
  the same space.  Regular decomposition means any two overlapping
  blocks are ancestor/descendant (or equal), so the traversal is the
  aligned-grid join the bucket PMR was chosen for.
* :func:`rtree_join` -- MBR-guided node-pair descent of two R-trees;
  non-disjointness shows up as repeated candidate pairs that must be
  deduplicated.
* :func:`brute_join` -- exact all-pairs oracle.

All candidate pairs are verified with the exact segment-segment
intersection predicate, and results are returned as a sorted, unique
``(k, 2)`` index array.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..geometry.rect import overlaps
from ..geometry.segment import segments_intersect_segments, validate_segments
from .quadblock import Quadtree
from .rtree import RTree

__all__ = ["brute_join", "quadtree_join", "rtree_join", "overlay_points"]


def overlay_points(a: np.ndarray, b: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Intersection geometry of joined pairs (the overlay's node set).

    Given the ``(k, 2)`` pair index array returned by any join, compute
    the ``(k, 2)`` crossing coordinates: the unique intersection point
    for properly crossing pairs, the touch point for endpoint contacts,
    and the midpoint of the shared extent for collinear overlaps (which
    have no unique point).
    """
    from ..geometry.distance import segment_intersection_points

    a = validate_segments(a, "a")
    b = validate_segments(b, "b")
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    if pairs.size == 0:
        return np.zeros((0, 2))
    return segment_intersection_points(a[pairs[:, 0]], b[pairs[:, 1]])


def _verify_pairs(a: np.ndarray, b: np.ndarray, ii: np.ndarray, jj: np.ndarray) -> np.ndarray:
    """Exact-test candidate index pairs and return them sorted & unique."""
    if ii.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    keys = ii.astype(np.int64) * (b.shape[0] + 1) + jj
    uniq = np.unique(keys)
    ii = uniq // (b.shape[0] + 1)
    jj = uniq % (b.shape[0] + 1)
    hit = segments_intersect_segments(a[ii], b[jj])
    out = np.column_stack([ii[hit], jj[hit]])
    return out[np.lexsort((out[:, 1], out[:, 0]))]


def brute_join(a: np.ndarray, b: np.ndarray, block: int = 512) -> np.ndarray:
    """All intersecting pairs by exhaustive testing (blocked to bound memory)."""
    a = validate_segments(a, "a")
    b = validate_segments(b, "b")
    rows: List[np.ndarray] = []
    for start in range(0, a.shape[0], block):
        chunk = a[start:start + block]
        na = chunk.shape[0]
        ii = np.repeat(np.arange(na), b.shape[0])
        jj = np.tile(np.arange(b.shape[0]), na)
        hit = segments_intersect_segments(chunk[ii], b[jj])
        if hit.any():
            rows.append(np.column_stack([ii[hit] + start, jj[hit]]))
    if not rows:
        return np.zeros((0, 2), dtype=np.int64)
    out = np.concatenate(rows).astype(np.int64)
    return out[np.lexsort((out[:, 1], out[:, 0]))]


def quadtree_join(ta: Quadtree, tb: Quadtree) -> np.ndarray:
    """Join two quadtrees by simultaneous traversal of aligned blocks."""
    if ta.domain != tb.domain:
        raise ValueError("joined quadtrees must share a domain")
    pairs_i: List[np.ndarray] = []
    pairs_j: List[np.ndarray] = []
    stack = [(0, 0)]
    while stack:
        na, nb = stack.pop()
        if not overlaps(ta.boxes[na][None, :], tb.boxes[nb][None, :])[0]:
            continue
        a_leaf = ta.children[na, 0] < 0
        b_leaf = tb.children[nb, 0] < 0
        if a_leaf and b_leaf:
            ia = ta.lines_in_node(na)
            jb = tb.lines_in_node(nb)
            if ia.size and jb.size:
                pairs_i.append(np.repeat(ia, jb.size))
                pairs_j.append(np.tile(jb, ia.size))
        elif a_leaf or (not b_leaf and ta.level[na] > tb.level[nb]):
            stack.extend((na, int(c)) for c in tb.children[nb])
        else:
            stack.extend((int(c), nb) for c in ta.children[na])
    ii = np.concatenate(pairs_i) if pairs_i else np.zeros(0, dtype=np.int64)
    jj = np.concatenate(pairs_j) if pairs_j else np.zeros(0, dtype=np.int64)
    return _verify_pairs(ta.lines, tb.lines, ii, jj)


def rtree_join(ta: RTree, tb: RTree) -> np.ndarray:
    """Join two R-trees by synchronized MBR-guided descent."""
    if ta.lines.size == 0 or tb.lines.size == 0:
        return np.zeros((0, 2), dtype=np.int64)

    # per-tree: map each node (level, idx) to child list; leaves map to lines
    def children(tree: RTree, lvl: int, idx: int) -> np.ndarray:
        if lvl == 0:
            return tree.lines_in_leaf(idx)
        return np.flatnonzero(tree.level_parent[lvl - 1] == idx)

    pairs_i: List[np.ndarray] = []
    pairs_j: List[np.ndarray] = []
    stack = [(ta.height - 1, 0, tb.height - 1, 0)]
    while stack:
        la, na, lb, nb = stack.pop()
        if not overlaps(ta.level_mbr[la][na][None, :], tb.level_mbr[lb][nb][None, :])[0]:
            continue
        if la == 0 and lb == 0:
            ia = ta.lines_in_leaf(na)
            jb = tb.lines_in_leaf(nb)
            bb_hit = overlaps(
                ta.entry_bbox[np.repeat(ia, jb.size)],
                tb.entry_bbox[np.tile(jb, ia.size)])
            ii = np.repeat(ia, jb.size)[bb_hit]
            jj = np.tile(jb, ia.size)[bb_hit]
            if ii.size:
                pairs_i.append(ii)
                pairs_j.append(jj)
        elif la == 0 or (lb != 0 and lb >= la):
            for c in children(tb, lb, nb):
                stack.append((la, na, lb - 1, int(c)))
        else:
            for c in children(ta, la, na):
                stack.append((la - 1, int(c), lb, nb))
    ii = np.concatenate(pairs_i) if pairs_i else np.zeros(0, dtype=np.int64)
    jj = np.concatenate(pairs_j) if pairs_j else np.zeros(0, dtype=np.int64)
    return _verify_pairs(ta.lines, tb.lines, ii, jj)
