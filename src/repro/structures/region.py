"""Region quadtrees with set-theoretic operations (paper Section 1).

Most of the prior work the paper surveys -- Dehne, Ibarra, Bhaskar,
Kasif, Mei, Nandy, Hung -- concerns *region* quadtrees over raster
data: "extracting region properties and performing set theoretic
queries".  This module supplies that substrate so the survey's
operations are runnable next to the vector structures:

* :func:`build_region_quadtree` -- bottom-up construction from a binary
  raster.  The build is data-parallel in the classic sense: level ``k``
  is produced from level ``k+1`` by one whole-array 2x2 reduction (a
  single vectorised step per level, O(log side) levels).
* :meth:`RegionQuadtree.union` / ``intersect`` / ``xor`` /
  ``complement`` -- the set-theoretic queries, implemented by aligned
  recursive merge (gray nodes expand, uniform nodes act as constants).
* region properties: area, perimeter, block statistics.

Rasters are ``(side, side)`` boolean arrays with ``side`` a power of
two; array row 0 is the bottom row (y = 0), matching the geometric
convention elsewhere in the package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry.generators import check_power_of_two
from ..machine import Machine, get_machine

__all__ = ["RegionQuadtree", "build_region_quadtree"]

# node colours
WHITE, BLACK, GRAY = 0, 1, 2


@dataclass
class RegionQuadtree:
    """A region quadtree in pyramid form.

    ``levels[k]`` is a ``(2**k, 2**k)`` int8 array of node colours
    (WHITE / BLACK / GRAY) for the blocks of side ``side / 2**k``;
    ``levels[0]`` is the root, ``levels[-1]`` the pixel level (never
    GRAY).  The pyramid representation keeps every operation a stack of
    whole-array steps -- the image-space data-parallel style of the
    surveyed prior work.
    """

    levels: list
    side: int

    @property
    def height(self) -> int:
        return len(self.levels) - 1

    # -- structure statistics ------------------------------------------------

    def node_count(self) -> int:
        """Number of quadtree nodes (a GRAY node's children all exist)."""
        count = 1  # root
        for k in range(self.height):
            gray = int(np.count_nonzero(self.levels[k] == GRAY))
            count += 4 * gray
        return count

    def leaf_count(self) -> int:
        count = int(np.count_nonzero(self.levels[0] != GRAY))
        for k in range(1, len(self.levels)):
            parent_gray = np.repeat(np.repeat(self.levels[k - 1] == GRAY, 2, 0), 2, 1)
            count += int(np.count_nonzero(parent_gray & (self.levels[k] != GRAY)))
        return count

    def area(self) -> int:
        """Number of BLACK pixels (a one-scan region property)."""
        return int(self.to_raster().sum())

    def perimeter(self) -> int:
        """Length of the black-white boundary (domain edge included)."""
        r = self.to_raster()
        padded = np.zeros((self.side + 2, self.side + 2), dtype=bool)
        padded[1:-1, 1:-1] = r
        edges = 0
        for dy, dx in ((0, 1), (0, -1), (1, 0), (-1, 0)):
            shifted = np.roll(padded, (dy, dx), axis=(0, 1))
            edges += int(np.count_nonzero(padded & ~shifted))
        return edges

    # -- conversions ----------------------------------------------------------

    def to_raster(self) -> np.ndarray:
        """Expand back to the boolean image (exact inverse of the build)."""
        img = self.levels[0].copy()
        for k in range(1, len(self.levels)):
            expanded = np.repeat(np.repeat(img, 2, 0), 2, 1)
            img = np.where(expanded == GRAY, self.levels[k], expanded)
        return img == BLACK

    # -- set-theoretic queries (the [Bhas88]/[Best92] operations) -------------

    def _combine(self, other: "RegionQuadtree", table) -> "RegionQuadtree":
        if self.side != other.side:
            raise ValueError("operands must share a raster side")
        # combine pixel level exactly, then rebuild the pyramid: every
        # level is again one whole-array step.
        a = self.to_raster()
        b = other.to_raster()
        return build_region_quadtree(table(a, b))

    def union(self, other: "RegionQuadtree") -> "RegionQuadtree":
        return self._combine(other, np.logical_or)

    def intersect(self, other: "RegionQuadtree") -> "RegionQuadtree":
        return self._combine(other, np.logical_and)

    def xor(self, other: "RegionQuadtree") -> "RegionQuadtree":
        return self._combine(other, np.logical_xor)

    def complement(self) -> "RegionQuadtree":
        return build_region_quadtree(~self.to_raster())

    # -- queries ----------------------------------------------------------------

    def pixel(self, x: int, y: int) -> bool:
        """Colour of pixel ``(x, y)`` by root-to-leaf descent."""
        if not (0 <= x < self.side and 0 <= y < self.side):
            raise IndexError("pixel outside the raster")
        for k in range(len(self.levels)):
            shift = self.height - k
            colour = self.levels[k][y >> shift, x >> shift]
            if colour != GRAY:
                return colour == BLACK
        raise AssertionError("pixel level may not be GRAY")

    def check(self) -> None:
        """Validate pyramid consistency."""
        assert self.levels[0].shape == (1, 1)
        assert self.levels[-1].shape == (self.side, self.side)
        assert not np.any(self.levels[-1] == GRAY)
        for k in range(self.height):
            lvl = self.levels[k]
            below = self.levels[k + 1]
            q = below.reshape(lvl.shape[0], 2, lvl.shape[1], 2).transpose(0, 2, 1, 3)
            q = q.reshape(lvl.shape[0], lvl.shape[1], 4)
            uniform_white = np.all(q == WHITE, axis=2)
            uniform_black = np.all(q == BLACK, axis=2)
            assert np.array_equal(lvl == WHITE, uniform_white)
            assert np.array_equal(lvl == BLACK, uniform_black)


def build_region_quadtree(raster: np.ndarray,
                          machine: Optional[Machine] = None) -> RegionQuadtree:
    """Bottom-up data-parallel region quadtree construction.

    Level ``k`` is computed from level ``k+1`` with a single whole-array
    2x2 reduction (four-sibling agreement test) -- the hypercube
    bottom-up build of [Ibar93]/[Dehn91] expressed as vector steps.
    O(log side) levels, one ``elementwise`` step each.
    """
    raster = np.asarray(raster, dtype=bool)
    if raster.ndim != 2 or raster.shape[0] != raster.shape[1]:
        raise ValueError("raster must be square")
    side = check_power_of_two(raster.shape[0])
    m = machine or get_machine()

    pixel = np.where(raster, BLACK, WHITE).astype(np.int8)
    levels = [pixel]
    m.record("elementwise", side * side)
    while levels[-1].shape[0] > 1:
        cur = levels[-1]
        h = cur.shape[0] // 2
        q = cur.reshape(h, 2, h, 2).transpose(0, 2, 1, 3).reshape(h, h, 4)
        out = np.full((h, h), GRAY, dtype=np.int8)
        out[np.all(q == WHITE, axis=2)] = WHITE
        out[np.all(q == BLACK, axis=2)] = BLACK
        levels.append(out)
        m.record("elementwise", h * h)
    levels.reverse()
    return RegionQuadtree(levels, side)
