"""Spatial data structures built with the data-parallel primitives (Section 5)."""

from .batch import (
    batch_nearest_quadtree,
    batch_nearest_rtree,
    batch_point_query_quadtree,
    batch_point_query_rtree,
    batch_window_query_quadtree,
    batch_window_query_rtree,
)
from .bucket_pmr import BucketPMRQuadtree, build_bucket_pmr, occupancy_bound_ok
from .build import BuildTrace, RoundStats, build_quadtree
from .components import MapTopology, connected_components, polygonize
from .dynamic import delete_lines, insert_lines, pm1_delete_lines
from .kdtree import KDTree, build_kdtree
from .io import (IntegrityError, inspect_structure, load_structure,
                 payload_checksum, save_structure)
from .join import brute_join, overlay_points, quadtree_join, rtree_join
from .linear import LinearQuadtree, to_linear
from .nearest import brute_nearest, quadtree_nearest, rtree_nearest
from .pm1 import PM1Quadtree, build_pm1
from .pr_quadtree import PRQuadtree, build_pr_quadtree
from .quadblock import CHILD_NAMES, NodeTable, Quadtree, child_box
from .region import RegionQuadtree, build_region_quadtree
from .rtree import RTree, build_rtree
from .sharded import (Shard, ShardedIndex, build_sharded, repair_sharded,
                      shard_keys, sharded_join)
from .str_pack import build_rtree_str

__all__ = [
    "Quadtree",
    "NodeTable",
    "child_box",
    "CHILD_NAMES",
    "BuildTrace",
    "RoundStats",
    "build_quadtree",
    "build_pm1",
    "PM1Quadtree",
    "build_bucket_pmr",
    "BucketPMRQuadtree",
    "occupancy_bound_ok",
    "build_rtree",
    "build_rtree_str",
    "RTree",
    "brute_join",
    "quadtree_join",
    "rtree_join",
    "overlay_points",
    "delete_lines",
    "insert_lines",
    "pm1_delete_lines",
    "LinearQuadtree",
    "to_linear",
    "brute_nearest",
    "quadtree_nearest",
    "rtree_nearest",
    "connected_components",
    "polygonize",
    "MapTopology",
    "build_kdtree",
    "KDTree",
    "build_pr_quadtree",
    "PRQuadtree",
    "build_region_quadtree",
    "RegionQuadtree",
    "batch_window_query_quadtree",
    "batch_window_query_rtree",
    "batch_point_query_quadtree",
    "batch_point_query_rtree",
    "batch_nearest_quadtree",
    "batch_nearest_rtree",
    "save_structure",
    "load_structure",
    "inspect_structure",
    "payload_checksum",
    "IntegrityError",
    "Shard",
    "ShardedIndex",
    "build_sharded",
    "repair_sharded",
    "shard_keys",
    "sharded_join",
]
