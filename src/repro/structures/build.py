"""Shared iterative driver for the data-parallel quadtree builds.

Both quadtree constructions of Section 5 are the same loop -- decide
which nodes split, split them all simultaneously with the Section 4.6
primitive, repeat -- differing only in the *splitting rule*:

* PM1 (Section 5.1): the vertex-based rule of Section 4.5;
* bucket PMR (Section 5.2): the capacity check of Section 4.4, cut off
  at the maximal resolution.

The driver owns the line-vector / node-table correspondence: every
non-empty node has exactly one segment group; nodes created empty by a
split are recorded as (line-less) leaves.  It also keeps a per-round
trace so the scaling benchmarks can count rounds and primitive steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..geometry.generators import check_power_of_two
from ..geometry.segment import validate_segments
from ..machine import Machine, Segments, get_machine
from ..primitives.quad_split import split_quad_nodes
from .quadblock import NodeTable, Quadtree

__all__ = ["BuildTrace", "RoundStats", "build_quadtree"]

# A splitting rule maps the current build state to one verdict per node
# segment: (segs_xy, segments, node_boxes, node_levels, machine) -> bool[nseg]
SplitRule = Callable[[np.ndarray, Segments, np.ndarray, np.ndarray, Machine], np.ndarray]


@dataclass(frozen=True)
class RoundStats:
    """One subdivision round of a build."""

    round_index: int
    nodes_split: int
    line_processors: int
    steps_before: float
    steps_after: float

    @property
    def steps(self) -> float:
        return self.steps_after - self.steps_before


@dataclass
class BuildTrace:
    """Per-round history of a build (experiments C1-C3 read this)."""

    rounds: List[RoundStats] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_steps(self) -> float:
        return sum(r.steps for r in self.rounds)

    @property
    def max_line_processors(self) -> int:
        return max((r.line_processors for r in self.rounds), default=0)


def build_quadtree(lines: np.ndarray, domain: int, rule: SplitRule,
                   max_depth: Optional[int] = None,
                   machine: Optional[Machine] = None) -> tuple[Quadtree, BuildTrace]:
    """Run the iterative data-parallel quadtree construction.

    Parameters
    ----------
    lines:
        ``(n, 4)`` input segments, all inside ``[0, domain]^2``.
    domain:
        Side of the space; a power of two.
    rule:
        Splitting rule (see :data:`SplitRule`).
    max_depth:
        Subdivision cap; defaults to ``log2(domain)`` (1x1 blocks), "the
        maximal resolution of the quadtree".
    """
    domain = check_power_of_two(domain)
    lines = validate_segments(lines)
    if lines.size:
        if lines.min() < 0 or lines.max() > domain:
            raise ValueError("line coordinates must lie inside [0, domain]^2")
    depth_cap = int(np.log2(domain)) if max_depth is None else int(max_depth)
    if not 0 <= depth_cap <= int(np.log2(domain)):
        raise ValueError("max_depth must be between 0 and log2(domain)")

    m = machine or get_machine()
    table = NodeTable(domain)
    n = lines.shape[0]

    if n == 0:
        boxes, level, parent, children = table.freeze()
        tree = Quadtree(lines, boxes, level, parent, children,
                        np.zeros(2, dtype=np.int64), np.zeros(0, dtype=np.int64),
                        float(domain), depth_cap)
        return tree, BuildTrace()

    segs_xy = lines.copy()
    lid = np.arange(n, dtype=np.int64)
    segments = Segments.single(n)
    seg_node = np.zeros(1, dtype=np.int64)  # segment index -> node id

    trace = BuildTrace()
    round_index = 0
    while True:
        node_boxes = np.vstack([table.boxes[i] for i in seg_node])
        node_levels = np.asarray([table.level[i] for i in seg_node], dtype=np.int64)

        with m.phase(f"round{round_index}"):
            verdict = np.asarray(
                rule(segs_xy, segments, node_boxes, node_levels, m), dtype=bool)
            if verdict.shape != (segments.nseg,):
                raise ValueError("splitting rule must return one verdict per segment")
            split_flags = verdict & (node_levels < depth_cap)
            if not split_flags.any():
                break

            steps_before = m.steps
            res = split_quad_nodes(segs_xy, node_boxes, segments, split_flags,
                                   payloads={"lid": lid}, machine=m)

        # node-table update: every splitting node gains all four children
        children_of: dict[int, tuple[int, int, int, int]] = {}
        for s in np.flatnonzero(split_flags):
            children_of[int(seg_node[s])] = table.split(int(seg_node[s]))

        new_seg_node = np.empty(res.segments.nseg, dtype=np.int64)
        for j in range(res.segments.nseg):
            parent_node = int(seg_node[res.parent_seg[j]])
            code = int(res.child_code[j])
            new_seg_node[j] = children_of[parent_node][code] if code >= 0 else parent_node

        segs_xy = res.segs_xy
        lid = res.payloads["lid"]
        segments = res.segments
        seg_node = new_seg_node

        trace.rounds.append(RoundStats(
            round_index, int(split_flags.sum()), segments.n,
            steps_before, m.steps))
        round_index += 1
        if round_index > depth_cap + 1:
            raise RuntimeError("build failed to terminate within the depth cap")

    # assemble the CSR line assignment over the full node table
    boxes, level, parent, children = table.freeze()
    k = boxes.shape[0]
    counts = np.zeros(k, dtype=np.int64)
    counts[seg_node] = segments.lengths
    node_ptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(counts, out=node_ptr[1:])
    node_lines = np.empty(segments.n, dtype=np.int64)
    for s, sl in enumerate(segments.slices()):
        node = int(seg_node[s])
        node_lines[node_ptr[node]:node_ptr[node + 1]] = lid[sl]

    tree = Quadtree(lines, boxes, level, parent, children,
                    node_ptr, node_lines, float(domain), depth_cap)
    return tree, trace
