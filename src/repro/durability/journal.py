"""The write-ahead mutation journal: crash-consistent commit records.

One :class:`MutationJournal` belongs to one dataset version chain (one
*root* fingerprint).  Every committed mutation batch appends exactly
one record **before** the engine warms the new version's index and
flips reads to it -- the PR 7 commit protocol becomes::

    stage -> journal append (+fsync) -> warm build -> flip -> ack

so an acknowledged commit is always on disk, and a commit that died
before the ack is either absent (crashed before the append finished --
the torn tail is truncated on the next open) or present as a whole
record (crashed after: replay applies it atomically; a batch is never
half-visible).  A failed warm build *abandons* the just-appended tail
record by truncating it back off the segment, keeping the journal's
"every record was committed" invariant without tombstones.

On-disk layout (``journal_dir/<root>/``)::

    checkpoint.npz            # dataset snapshot covering records <= seq
    seg-<first seq, 16 digits>.wal

Each segment starts with an 8-byte magic; each record is::

    u32 payload length | u32 CRC-32 of the payload | payload

and the payload is a u32-length-prefixed JSON header (seq, base and
committed fingerprints, chain version, row counts, domain) followed by
the raw delete-id (int64 LE) and insert-row (float64 LE) bytes.  The
CRC plus the length prefix make a torn tail detectable: on open the
last good record boundary is found and the file is truncated there
(``torn_tail_truncations``).  Corruption *before* the tail -- which an
fsync'd journal should never produce -- conservatively drops that
segment's tail and every later segment.

Checkpoints make recovery self-contained and bound replay work: a
checkpoint atomically snapshots the chain head's dataset (temp file +
``os.replace``, verified by content fingerprint on load) and then
drops every segment whose records it fully covers (prefix truncation).
The journal writes a *base* checkpoint (seq 0, the dataset as of
journal creation) the moment it is created, so a journal can always be
replayed from its own directory alone.

``fsync`` policy: ``"commit"`` (default) fsyncs the segment after every
append -- an acked write survives power loss; ``"none"`` only flushes
to the OS -- an acked write survives a killed *process* (the kill -9
chaos test passes either way) but not a lost machine.
"""

from __future__ import annotations

import io
import json
import os
import re
import struct
import tempfile
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import EngineError

__all__ = ["JournalError", "JournalRecord", "MutationJournal",
           "FSYNC_POLICIES"]

#: accepted ``fsync`` policies
FSYNC_POLICIES = ("commit", "none")

_MAGIC = b"RWALSEG1"
_REC_HEAD = struct.Struct("<II")      # payload length, payload crc32
_HDR_LEN = struct.Struct("<I")        # JSON header length
_SEG_RE = re.compile(r"^seg-(\d{16})\.wal$")
_CHECKPOINT = "checkpoint.npz"


class JournalError(EngineError):
    """The journal is unusable (bad magic, refused append, ...)."""

    reason = "journal_error"


@dataclass(frozen=True)
class JournalRecord:
    """One committed mutation batch as replay sees it."""

    seq: int                  # 1-based, contiguous per journal
    base: str                 # fingerprint the batch was applied to
    fingerprint: str          # content fingerprint of the committed version
    version: int              # chain position at commit time
    num_lines: int            # row count of the committed version
    domain: int               # committed version's (possibly grown) domain
    delete_ids: np.ndarray    # int64 row ids of ``base`` deleted first
    insert_lines: np.ndarray  # float64 (n, 4) rows appended after survivors


def _encode_record(rec: JournalRecord) -> bytes:
    dels = np.ascontiguousarray(rec.delete_ids, dtype=np.int64)
    ins = np.ascontiguousarray(rec.insert_lines,
                               dtype=np.float64).reshape(-1, 4)
    header = json.dumps({
        "seq": int(rec.seq), "base": rec.base, "fp": rec.fingerprint,
        "version": int(rec.version), "num_lines": int(rec.num_lines),
        "domain": int(rec.domain), "n_del": int(dels.size),
        "n_ins": int(ins.shape[0]),
    }, sort_keys=True).encode()
    payload = b"".join([_HDR_LEN.pack(len(header)), header,
                        dels.tobytes(), ins.tobytes()])
    return _REC_HEAD.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes) -> JournalRecord:
    (hlen,) = _HDR_LEN.unpack_from(payload)
    pos = _HDR_LEN.size
    hdr = json.loads(payload[pos:pos + hlen].decode())
    pos += hlen
    n_del, n_ins = int(hdr["n_del"]), int(hdr["n_ins"])
    dels = np.frombuffer(payload, dtype="<i8", count=n_del,
                         offset=pos).astype(np.int64)
    pos += n_del * 8
    ins = np.frombuffer(payload, dtype="<f8", count=n_ins * 4,
                        offset=pos).astype(np.float64).reshape(-1, 4)
    return JournalRecord(seq=int(hdr["seq"]), base=str(hdr["base"]),
                         fingerprint=str(hdr["fp"]),
                         version=int(hdr["version"]),
                         num_lines=int(hdr["num_lines"]),
                         domain=int(hdr["domain"]),
                         delete_ids=dels, insert_lines=ins)


@dataclass
class _Segment:
    path: str
    first_seq: int           # seq the file name promises
    last_seq: int = 0        # 0: no readable records
    end_offset: int = len(_MAGIC)


class MutationJournal:
    """Append-only, CRC-checksummed mutation log for one version chain.

    Single-writer: the engine serializes appends per root under its
    mutation lock, so the journal itself needs no locking.  ``observer``
    (optional) receives ``(event, n)`` per counter increment --
    ``wal_append``, ``wal_bytes``, ``fsync``, ``torn_tail_truncation``,
    ``checkpoint``, ``wal_segment_rotated``, ``wal_segment_truncated``,
    ``wal_abandon`` -- the engine points it at
    :meth:`~repro.engine.stats.EngineStats.record_wal_event`.
    """

    def __init__(self, directory: str, *, fsync: str = "commit",
                 segment_bytes: int = 4 << 20,
                 observer: Optional[Callable[..., None]] = None):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}; "
                             f"choose from {FSYNC_POLICIES}")
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        self.directory = os.fspath(directory)
        self.fsync_policy = fsync
        self.segment_bytes = int(segment_bytes)
        self._observer = observer
        self._segments: List[_Segment] = []
        self._fh: Optional[io.BufferedRandom] = None
        #: (seq, pre-append end offset) of the newest append -- what
        #: :meth:`abandon_last` rolls back
        self._last_append: Optional[Tuple[int, int]] = None
        self._last_fingerprint: Optional[str] = None
        self._closed = False
        self.appends = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self.torn_tail_truncations = 0
        self.checkpoints = 0
        self.segments_truncated = 0
        self.abandons = 0
        self._open()

    # -- opening / scanning ----------------------------------------------

    def _notify(self, event: str, n: int = 1) -> None:
        if self._observer is not None:
            self._observer(event, n)

    def _open(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        # a crashed checkpoint writer leaves only temp files; sweep them
        for name in os.listdir(self.directory):
            if name.startswith(".tmp-"):
                _unlink(os.path.join(self.directory, name))
        names = sorted((m.group(1), name)
                       for name in os.listdir(self.directory)
                       for m in [_SEG_RE.match(name)] if m)
        for first, name in names:
            seg = _Segment(os.path.join(self.directory, name), int(first))
            torn = self._scan_segment(seg)
            self._segments.append(seg)
            if torn:
                # everything past the tear is unreadable; an fsync'd
                # journal only ever tears at the very tail, but a
                # mid-journal tear still recovers the longest clean
                # prefix instead of refusing to open
                os.truncate(seg.path, max(seg.end_offset, 0))
                if seg.end_offset < len(_MAGIC):
                    # the magic itself was torn: re-stamp an empty segment
                    with open(seg.path, "r+b") as fh:
                        fh.write(_MAGIC)
                    seg.end_offset = len(_MAGIC)
                self.torn_tail_truncations += 1
                self._notify("torn_tail_truncation")
                later = [s for _, s in names if int(_SEG_RE.match(s).group(1))
                         > seg.first_seq]
                for doomed in later:
                    _unlink(os.path.join(self.directory, doomed))
                break
        if not self._segments:
            self._add_segment(1)
        else:
            last = self._segments[-1]
            self._fh = open(last.path, "r+b")
            self._fh.seek(last.end_offset)

    def _scan_segment(self, seg: _Segment) -> bool:
        """Walk records, fixing ``seg``'s bookkeeping; True if torn."""
        expect = seg.first_seq
        with open(seg.path, "rb") as fh:
            if fh.read(len(_MAGIC)) != _MAGIC:
                seg.end_offset = 0   # unreadable file: treat as all-torn
                return True
            offset = len(_MAGIC)
            while True:
                head = fh.read(_REC_HEAD.size)
                if not head:
                    return False       # clean end
                if len(head) < _REC_HEAD.size:
                    return True
                length, crc = _REC_HEAD.unpack(head)
                payload = fh.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    return True
                try:
                    rec = _decode_record_header(payload)
                except (ValueError, KeyError):
                    return True
                if rec["seq"] != expect:
                    return True
                offset += _REC_HEAD.size + length
                seg.last_seq = expect
                seg.end_offset = offset
                self._last_fingerprint = rec["fp"]
                expect += 1

    def _add_segment(self, first_seq: int) -> None:
        if self._fh is not None:
            self._flush(force_fsync=self.fsync_policy == "commit")
            self._fh.close()
        path = os.path.join(self.directory, f"seg-{first_seq:016d}.wal")
        self._fh = open(path, "w+b")
        self._fh.write(_MAGIC)
        self._flush(force_fsync=self.fsync_policy == "commit")
        self._fsync_dir()
        self._segments.append(_Segment(path, first_seq))

    # -- writing ---------------------------------------------------------

    @property
    def last_seq(self) -> int:
        for seg in reversed(self._segments):
            if seg.last_seq:
                return seg.last_seq
        return self._checkpoint_seq()

    @property
    def next_seq(self) -> int:
        tail = self._segments[-1]
        return tail.last_seq + 1 if tail.last_seq else tail.first_seq

    @property
    def last_fingerprint(self) -> Optional[str]:
        """Committed fingerprint of the newest record (None: no records)."""
        return self._last_fingerprint

    def append(self, *, base: str, fingerprint: str, version: int,
               num_lines: int, domain: int, delete_ids,
               insert_lines) -> int:
        """Durably log one committed batch; returns its sequence number.

        Called *before* the warm build: on return the record is flushed
        (and fsync'd under the ``commit`` policy), so a crash at any
        later point of the commit replays it.  A failed build must call
        :meth:`abandon_last` with the returned seq.
        """
        if self._closed:
            raise JournalError("journal is closed")
        tail = self._segments[-1]
        if tail.last_seq and tail.end_offset >= self.segment_bytes:
            self._add_segment(tail.last_seq + 1)
            self._notify("wal_segment_rotated")
            tail = self._segments[-1]
        seq = self.next_seq
        rec = JournalRecord(seq=seq, base=base, fingerprint=fingerprint,
                            version=version, num_lines=num_lines,
                            domain=domain,
                            delete_ids=np.asarray(delete_ids,
                                                  dtype=np.int64).reshape(-1),
                            insert_lines=np.asarray(
                                insert_lines,
                                dtype=np.float64).reshape(-1, 4))
        blob = _encode_record(rec)
        before = tail.end_offset
        self._fh.seek(before)
        self._fh.write(blob)
        self._flush(force_fsync=self.fsync_policy == "commit")
        tail.last_seq = seq
        tail.end_offset = before + len(blob)
        self._last_append = (seq, before)
        self._last_fingerprint = fingerprint
        self.appends += 1
        self.bytes_appended += len(blob)
        self._notify("wal_append")
        self._notify("wal_bytes", len(blob))
        return seq

    def abandon_last(self, seq: int) -> None:
        """Roll the newest record back off the tail (failed warm build).

        Only the record :meth:`append` just wrote can be abandoned --
        appends per chain are serialized, so the failed commit is
        always the tail and truncation needs no tombstones.
        """
        if self._last_append is None or self._last_append[0] != seq:
            raise JournalError(
                f"cannot abandon seq {seq}: not the newest append")
        _, before = self._last_append
        tail = self._segments[-1]
        self._fh.truncate(before)
        self._flush(force_fsync=self.fsync_policy == "commit")
        tail.end_offset = before
        tail.last_seq = seq - 1 if seq - 1 >= tail.first_seq else 0
        self._last_append = None
        self._last_fingerprint = None   # unknown without a rescan
        self.abandons += 1
        self._notify("wal_abandon")

    def _flush(self, force_fsync: bool) -> None:
        self._fh.flush()
        if force_fsync:
            os.fsync(self._fh.fileno())
            self.fsyncs += 1
            self._notify("fsync")

    def _fsync_dir(self) -> None:
        if self.fsync_policy != "commit":
            return
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return   # platform without directory fds
        try:
            os.fsync(fd)
            self.fsyncs += 1
            self._notify("fsync")
        finally:
            os.close(fd)

    # -- reading ---------------------------------------------------------

    def records(self, after_seq: int = 0) -> Iterator[JournalRecord]:
        """Replay every durable record with ``seq > after_seq`` in order."""
        if self._fh is not None:
            self._fh.flush()
        for seg in self._segments:
            if seg.last_seq and seg.last_seq <= after_seq:
                continue
            with open(seg.path, "rb") as fh:
                if fh.read(len(_MAGIC)) != _MAGIC:
                    return
                offset = len(_MAGIC)
                while offset < seg.end_offset:
                    head = fh.read(_REC_HEAD.size)
                    length, crc = _REC_HEAD.unpack(head)
                    payload = fh.read(length)
                    if zlib.crc32(payload) != crc:
                        raise JournalError(
                            f"CRC mismatch inside scanned region of "
                            f"{seg.path} at offset {offset}")
                    offset += _REC_HEAD.size + length
                    rec = _decode_payload(payload)
                    if rec.seq > after_seq:
                        yield rec

    # -- checkpoints -----------------------------------------------------

    def _checkpoint_path(self) -> str:
        return os.path.join(self.directory, _CHECKPOINT)

    def _checkpoint_seq(self) -> int:
        meta = self.read_checkpoint_meta()
        return int(meta["seq"]) if meta else 0

    def write_checkpoint(self, lines: np.ndarray, *, fingerprint: str,
                         version: int, domain: int,
                         seq: Optional[int] = None) -> Dict[str, object]:
        """Atomically snapshot the dataset covering records ``<= seq``.

        ``seq`` defaults to the newest record (the caller must hold the
        chain quiescent so the snapshot really is that record's
        content).  Fully covered segments are dropped afterwards --
        the prefix truncation that keeps replay bounded.
        """
        if seq is None:
            seq = self.last_seq
        arr = np.ascontiguousarray(np.asarray(lines,
                                              dtype=np.float64).reshape(-1, 4))
        meta = {"seq": int(seq), "fingerprint": str(fingerprint),
                "version": int(version), "domain": int(domain),
                "num_lines": int(arr.shape[0])}
        fd, tmp = tempfile.mkstemp(dir=self.directory, prefix=".tmp-ck-",
                                   suffix=".npz")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, lines=arr,
                         meta=np.frombuffer(json.dumps(meta).encode(),
                                            dtype=np.uint8))
                fh.flush()
                if self.fsync_policy == "commit":
                    os.fsync(fh.fileno())
                    self.fsyncs += 1
                    self._notify("fsync")
            os.replace(tmp, self._checkpoint_path())
        except BaseException:
            _unlink(tmp)
            raise
        self._fsync_dir()
        self.checkpoints += 1
        self._notify("checkpoint")
        self._truncate_through(int(seq))
        return meta

    def read_checkpoint(self):
        """``(lines, meta)`` of the snapshot; ``None`` if absent/corrupt."""
        path = self._checkpoint_path()
        if not os.path.exists(path):
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                lines = np.asarray(data["lines"], dtype=np.float64)
                meta = json.loads(bytes(np.asarray(data["meta"],
                                                   dtype=np.uint8)).decode())
        except Exception:
            return None
        return lines.reshape(-1, 4), meta

    def read_checkpoint_meta(self) -> Optional[Dict[str, object]]:
        ck = self.read_checkpoint()
        return ck[1] if ck is not None else None

    def _truncate_through(self, seq: int) -> None:
        """Drop whole segments whose records are all ``<= seq``.

        The active tail segment always survives (its file handle stays
        open); replay skips its covered records by sequence number.
        """
        keep: List[_Segment] = []
        for seg in self._segments:
            covered = seg.last_seq and seg.last_seq <= seq
            if covered and seg is not self._segments[-1]:
                _unlink(seg.path)
                self.segments_truncated += 1
                self._notify("wal_segment_truncated")
            else:
                keep.append(seg)
        self._segments = keep
        self._fsync_dir()

    # -- lifecycle / stats -----------------------------------------------

    def segment_paths(self) -> List[str]:
        return [seg.path for seg in self._segments]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._fh is not None:
            # the "none" policy still makes one durability point here:
            # a *graceful* shutdown leaves nothing in the page cache
            self._fh.flush()
            try:
                os.fsync(self._fh.fileno())
                self.fsyncs += 1
                self._notify("fsync")
            except OSError:
                pass
            self._fh.close()
            self._fh = None

    def snapshot(self) -> Dict[str, object]:
        meta = self.read_checkpoint_meta() or {}
        return {
            "directory": self.directory,
            "segments": len(self._segments),
            "last_seq": self.last_seq,
            "appends": self.appends,
            "bytes_appended": self.bytes_appended,
            "fsyncs": self.fsyncs,
            "fsync_policy": self.fsync_policy,
            "torn_tail_truncations": self.torn_tail_truncations,
            "checkpoints": self.checkpoints,
            "segments_truncated": self.segments_truncated,
            "abandons": self.abandons,
            "checkpoint_seq": int(meta.get("seq", 0)),
            "checkpoint_fingerprint": meta.get("fingerprint"),
        }

    def __enter__(self) -> "MutationJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _decode_record_header(payload: bytes) -> Dict[str, object]:
    (hlen,) = _HDR_LEN.unpack_from(payload)
    if _HDR_LEN.size + hlen > len(payload):
        raise ValueError("header overruns payload")
    return json.loads(payload[_HDR_LEN.size:_HDR_LEN.size + hlen].decode())


def _unlink(path: str) -> bool:
    try:
        os.unlink(path)
        return True
    except OSError:
        return False
