"""Crash-consistent durability: write-ahead journal + replay recovery.

The engine's MVCC commits (PR 7) become durable here: every committed
mutation batch is appended to a per-chain :class:`MutationJournal`
*before* the new version's index warms and reads flip, restart
recovery (:func:`replay_journal`) re-applies the journal over the last
checkpoint's dataset snapshot, and content addressing proves the
recovered head bit-for-bit -- replay must reproduce the exact
committed fingerprints or fail loudly.  See the module docstrings and
README's "Durability & crash recovery".
"""

from .journal import (FSYNC_POLICIES, JournalError, JournalRecord,
                      MutationJournal)
from .recovery import (RecoveryError, RecoveryReport, journal_roots,
                       replay_journal)

__all__ = [
    "FSYNC_POLICIES",
    "JournalError",
    "JournalRecord",
    "MutationJournal",
    "RecoveryError",
    "RecoveryReport",
    "journal_roots",
    "replay_journal",
]
