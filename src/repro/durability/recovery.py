"""Restart recovery: replay a journal and *prove* it by fingerprint.

Content addressing makes recovery cheaply verifiable (the Sun &
Blelloch augmented-map observation from PAPERS.md applied to
durability): every journal record carries both the fingerprint it was
applied to (``base``) and the fingerprint the commit produced, and the
registry recomputes fingerprints from content on registration.  So
:func:`replay_journal` does not *trust* the journal -- it re-applies
each batch to the checkpoint dataset and checks that the recomputed
content hash equals the recorded one, bit for bit.  A divergence (bit
rot below the CRC's radar, a software bug, a mismatched checkpoint)
raises :class:`RecoveryError` instead of serving silently wrong data.

Replay is **lazy** like the live mutation path: versions are staged
and activated without building indexes, so recovering a 10k-record
journal costs hashes and vstacks, not 10k tree builds -- the head's
index comes from the store's warm tier or one cold build afterwards.

Idempotence: a record whose committed fingerprint is already active in
the registry's chain is skipped, so calling recovery twice (or
recovering a journal whose tail the caller already applied) cannot
double-apply a batch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import EngineError
from .journal import MutationJournal

__all__ = ["RecoveryError", "RecoveryReport", "replay_journal",
           "journal_roots"]


class RecoveryError(EngineError):
    """Replay could not reproduce the journal's committed fingerprints."""

    reason = "recovery_failed"


@dataclass(frozen=True)
class RecoveryReport:
    """What one chain's recovery did (one row of ``Engine.recover()``)."""

    root: str                     # journal directory name: the original handle
    chain_root: str               # chain anchor after replay (checkpoint fp)
    checkpoint_fingerprint: str
    checkpoint_seq: int
    records_replayed: int
    records_skipped: int          # already-active duplicates (idempotence)
    fingerprint: str              # recovered head's content fingerprint
    version: int                  # recovered head's chain position
    num_lines: int

    def as_dict(self) -> Dict[str, object]:
        return {"root": self.root, "chain_root": self.chain_root,
                "checkpoint_fingerprint": self.checkpoint_fingerprint,
                "checkpoint_seq": self.checkpoint_seq,
                "records_replayed": self.records_replayed,
                "records_skipped": self.records_skipped,
                "fingerprint": self.fingerprint, "version": self.version,
                "num_lines": self.num_lines}


def journal_roots(journal_dir: str) -> List[str]:
    """The chain roots (subdirectory names) a journal directory holds."""
    if not os.path.isdir(journal_dir):
        return []
    return sorted(name for name in os.listdir(journal_dir)
                  if os.path.isdir(os.path.join(journal_dir, name)))


def replay_journal(journal: MutationJournal, registry,
                   root: str) -> RecoveryReport:
    """Re-apply one journal's committed records onto ``registry``.

    Registers the checkpoint dataset, replays every later record
    (delete-then-insert, exactly the live commit semantics), and
    verifies each step by fingerprint identity.  Returns the
    :class:`RecoveryReport`; the caller (the engine) aliases the
    original handle onto the recovered chain and re-attaches the
    journal for new commits.
    """
    ck = journal.read_checkpoint()
    if ck is None:
        raise RecoveryError(
            f"journal {journal.directory!r} has no readable checkpoint; "
            f"cannot anchor replay")
    lines, meta = ck
    ck_fp = registry.register(lines, domain=int(meta["domain"]))
    if ck_fp != meta["fingerprint"]:
        raise RecoveryError(
            f"checkpoint content hashes to {ck_fp}, manifest says "
            f"{meta['fingerprint']} -- snapshot corrupt")
    cur_fp = registry.resolve(ck_fp).fingerprint
    replayed = skipped = 0
    for rec in journal.records(after_seq=int(meta["seq"])):
        if registry.version_of(rec.fingerprint) >= 0:
            # already active (duplicate replay): just advance the cursor
            skipped += 1
            cur_fp = rec.fingerprint
            continue
        if rec.base != cur_fp:
            raise RecoveryError(
                f"record seq {rec.seq} applies to {rec.base} but replay "
                f"is at {cur_fp} -- journal does not chain")
        old = registry.dataset(cur_fp)
        if rec.delete_ids.size and (rec.delete_ids.min() < 0
                                    or rec.delete_ids.max() >= old.shape[0]):
            raise RecoveryError(
                f"record seq {rec.seq} deletes ids out of range for "
                f"{old.shape[0]} lines")
        keep = np.ones(old.shape[0], dtype=bool)
        keep[rec.delete_ids] = False
        new_lines = np.vstack([old[keep], rec.insert_lines])
        staged = registry.stage_version(cur_fp, new_lines,
                                        delete_ids=rec.delete_ids,
                                        n_inserted=rec.insert_lines.shape[0])
        if staged.fingerprint != rec.fingerprint:
            registry.abandon_version(staged.fingerprint)
            raise RecoveryError(
                f"record seq {rec.seq} replayed to {staged.fingerprint}, "
                f"journal committed {rec.fingerprint} -- fingerprint "
                f"identity violated")
        if int(rec.num_lines) != int(staged.num_lines):
            raise RecoveryError(
                f"record seq {rec.seq}: replay has {staged.num_lines} "
                f"lines, journal recorded {rec.num_lines}")
        registry.activate_version(staged.fingerprint)
        cur_fp = staged.fingerprint
        replayed += 1
    head = registry.resolve(cur_fp)
    return RecoveryReport(
        root=root, chain_root=head.root,
        checkpoint_fingerprint=str(meta["fingerprint"]),
        checkpoint_seq=int(meta["seq"]),
        records_replayed=replayed, records_skipped=skipped,
        fingerprint=head.fingerprint, version=head.version,
        num_lines=head.num_lines)
