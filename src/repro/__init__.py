"""repro -- Data-Parallel Primitives for Spatial Operations.

A scan-model reproduction of Hoel & Samet, *Data-Parallel Primitives
for Spatial Operations* (ICPP 1995): the segmented-scan virtual vector
machine, the Section 4 spatial primitives (cloning, unshuffling,
duplicate deletion, capacity checks, node-split selection), and the
Section 5 data-parallel builds of the PM1 quadtree, bucket PMR
quadtree, and R-tree, with sequential baselines and query support.

Quick start::

    import numpy as np
    from repro import build_bucket_pmr, random_segments

    lines = random_segments(10_000, domain=4096, seed=0)
    tree, trace = build_bucket_pmr(lines, domain=4096, capacity=8)
    hits = tree.window_query([100, 100, 400, 300])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .analysis import (
    average_query_visits,
    fit_growth,
    format_table,
    measure_build,
    print_table,
    quadtree_stats,
    rtree_stats,
)
from .baselines import (
    PMRQuadtree,
    SeqRTree,
    brute_point_query,
    brute_window_query,
    pm1_node_must_split,
    seq_bucket_pmr_decomposition,
    seq_pm1_decomposition,
)
from .engine import EngineConfig, SpatialQueryEngine
from .store import IndexStore
from .geometry import (
    clustered_map,
    paper_dataset,
    paper_labels,
    pathological_pair,
    random_segments,
    road_map,
    star_map,
)
from .machine import (
    Machine,
    Segments,
    down_scan,
    ew,
    get_machine,
    permute,
    reset_machine,
    seg_scan,
    up_scan,
    use_machine,
)
from .primitives import (
    clone,
    delete_duplicates,
    mark_duplicates,
    mean_split,
    node_counts,
    pm1_should_split,
    split_quad_nodes,
    sweep_split,
    unshuffle,
)
from .structures import (
    BucketPMRQuadtree,
    batch_nearest_quadtree,
    batch_nearest_rtree,
    batch_point_query_quadtree,
    batch_point_query_rtree,
    batch_window_query_quadtree,
    batch_window_query_rtree,
    BuildTrace,
    KDTree,
    LinearQuadtree,
    MapTopology,
    PM1Quadtree,
    Quadtree,
    RTree,
    brute_join,
    brute_nearest,
    build_bucket_pmr,
    build_kdtree,
    build_pm1,
    build_pr_quadtree,
    build_region_quadtree,
    build_rtree,
    build_rtree_str,
    connected_components,
    delete_lines,
    insert_lines,
    load_structure,
    overlay_points,
    pm1_delete_lines,
    polygonize,
    quadtree_join,
    quadtree_nearest,
    rtree_join,
    rtree_nearest,
    save_structure,
    to_linear,
)

__version__ = "1.10.0"

__all__ = [
    # machine
    "Machine", "Segments", "seg_scan", "up_scan", "down_scan", "ew",
    "permute", "get_machine", "use_machine", "reset_machine",
    # primitives
    "clone", "unshuffle", "mark_duplicates", "delete_duplicates",
    "node_counts", "pm1_should_split", "split_quad_nodes",
    "mean_split", "sweep_split",
    # structures
    "Quadtree", "PM1Quadtree", "BucketPMRQuadtree", "RTree", "BuildTrace",
    "build_pm1", "build_bucket_pmr", "build_rtree", "build_rtree_str",
    "quadtree_join", "rtree_join", "brute_join", "overlay_points",
    "LinearQuadtree", "to_linear",
    "delete_lines", "insert_lines", "pm1_delete_lines",
    "save_structure", "load_structure",
    "brute_nearest", "quadtree_nearest", "rtree_nearest",
    "connected_components", "polygonize", "MapTopology",
    "build_kdtree", "KDTree", "build_pr_quadtree", "build_region_quadtree",
    "batch_window_query_quadtree", "batch_window_query_rtree",
    "batch_point_query_quadtree", "batch_point_query_rtree",
    "batch_nearest_quadtree", "batch_nearest_rtree",
    # engine / store
    "SpatialQueryEngine", "EngineConfig", "IndexStore",
    # baselines
    "seq_pm1_decomposition", "pm1_node_must_split", "PMRQuadtree",
    "seq_bucket_pmr_decomposition", "SeqRTree",
    "brute_window_query", "brute_point_query",
    # geometry / data
    "paper_dataset", "paper_labels", "pathological_pair",
    "random_segments", "road_map", "clustered_map", "star_map",
    # analysis
    "measure_build", "fit_growth", "quadtree_stats", "rtree_stats",
    "average_query_visits", "format_table", "print_table",
    "__version__",
]
